(* Unit and property tests for Dadu_service: the batched IK serving layer
   (scheduler, warm-start seed cache, fallback chain, metrics). *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
open Dadu_service
module Rng = Dadu_util.Rng
module Pool = Dadu_util.Domain_pool
module Trace = Dadu_util.Trace

let qcheck = QCheck_alcotest.to_alcotest

let eval12 = Robots.eval_chain ~dof:12

let random_problems ?(chain = eval12) ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Ik.random_problem rng chain)

(* ---- Ik.validate ---- *)

let test_validate_ok () =
  let p = (random_problems ~seed:1 1).(0) in
  Alcotest.(check bool) "valid problem accepted" true (Ik.validate p = Ok ())

let test_validate_dof_mismatch () =
  let p = (random_problems ~seed:2 1).(0) in
  let bad = { p with Ik.theta0 = Vec.create 5 } in
  match Ik.validate bad with
  | Error (Ik.Dof_mismatch { expected = 12; got = 5 }) -> ()
  | _ -> Alcotest.fail "expected Dof_mismatch {expected=12; got=5}"

let test_validate_nan_target () =
  let p = (random_problems ~seed:3 1).(0) in
  let bad = { p with Ik.target = Vec3.make 1.0 Float.nan 0.5 } in
  Alcotest.(check bool) "nan target rejected" true
    (Ik.validate bad = Error Ik.Nonfinite_target);
  let inf = { p with Ik.target = Vec3.make Float.infinity 0. 0. } in
  Alcotest.(check bool) "infinite target rejected" true
    (Ik.validate inf = Error Ik.Nonfinite_target)

let test_validate_nan_theta0 () =
  let p = (random_problems ~seed:4 1).(0) in
  let theta0 = Vec.copy p.Ik.theta0 in
  theta0.(3) <- Float.nan;
  Alcotest.(check bool) "nan theta0 rejected" true
    (Ik.validate { p with Ik.theta0 } = Error Ik.Nonfinite_theta0)

(* ---- Seed_cache ---- *)

let test_cache_hit_miss () =
  let c = Seed_cache.create ~cell_size:0.1 () in
  let target = Vec3.make 0.51 0.22 0.13 in
  Alcotest.(check (option reject)) "cold lookup misses" None
    (Seed_cache.find c ~chain_id:0 ~dof:3 target);
  Seed_cache.store c ~chain_id:0 ~dof:3 ~target [| 0.1; 0.2; 0.3 |];
  (match Seed_cache.find c ~chain_id:0 ~dof:3 (Vec3.make 0.53 0.24 0.11) with
  | Some theta ->
    Alcotest.(check (array (float 0.))) "same-cell neighbour returns the seed"
      [| 0.1; 0.2; 0.3 |] theta
  | None -> Alcotest.fail "expected a same-cell hit");
  Alcotest.(check (option reject)) "different cell misses" None
    (Seed_cache.find c ~chain_id:0 ~dof:3 (Vec3.make 0.91 0.22 0.13));
  Alcotest.(check int) "hits" 1 (Seed_cache.hits c);
  Alcotest.(check int) "misses" 2 (Seed_cache.misses c)

let test_cache_dof_keyed () =
  let c = Seed_cache.create ~cell_size:0.1 () in
  let target = Vec3.make 0.5 0.5 0.5 in
  Seed_cache.store c ~chain_id:0 ~dof:3 ~target [| 1.; 2.; 3. |];
  Alcotest.(check (option reject)) "same cell, other dof misses" None
    (Seed_cache.find c ~chain_id:0 ~dof:7 target)

let test_cache_lru_eviction () =
  let c = Seed_cache.create ~capacity:2 ~cell_size:1.0 () in
  let t1 = Vec3.make 0.5 0.5 0.5 in
  let t2 = Vec3.make 1.5 0.5 0.5 in
  let t3 = Vec3.make 2.5 0.5 0.5 in
  Seed_cache.store c ~chain_id:0 ~dof:2 ~target:t1 [| 1.; 1. |];
  Seed_cache.store c ~chain_id:0 ~dof:2 ~target:t2 [| 2.; 2. |];
  (* touch t1 so t2 becomes least-recently-used *)
  ignore (Seed_cache.find c ~chain_id:0 ~dof:2 t1);
  Seed_cache.store c ~chain_id:0 ~dof:2 ~target:t3 [| 3.; 3. |];
  Alcotest.(check int) "capacity respected" 2 (Seed_cache.length c);
  Alcotest.(check bool) "recently-used survivor" true
    (Seed_cache.find c ~chain_id:0 ~dof:2 t1 <> None);
  Alcotest.(check (option reject)) "LRU entry evicted" None
    (Seed_cache.find c ~chain_id:0 ~dof:2 t2);
  Alcotest.(check bool) "newcomer present" true (Seed_cache.find c ~chain_id:0 ~dof:2 t3 <> None)

let test_cache_replaces_cell () =
  let c = Seed_cache.create ~cell_size:1.0 () in
  let target = Vec3.make 0.5 0.5 0.5 in
  Seed_cache.store c ~chain_id:0 ~dof:1 ~target [| 1. |];
  Seed_cache.store c ~chain_id:0 ~dof:1 ~target:(Vec3.make 0.6 0.6 0.6) [| 2. |];
  Alcotest.(check int) "one cell" 1 (Seed_cache.length c);
  (match Seed_cache.find c ~chain_id:0 ~dof:1 target with
  | Some theta -> Alcotest.(check (array (float 0.))) "latest wins" [| 2. |] theta
  | None -> Alcotest.fail "expected hit")

let test_cache_rejects_bad_inputs () =
  Alcotest.check_raises "non-positive cell"
    (Invalid_argument "Seed_cache.create: cell_size must be positive and finite")
    (fun () -> ignore (Seed_cache.create ~cell_size:0. ()));
  let c = Seed_cache.create ~cell_size:0.1 () in
  Alcotest.check_raises "wrong dof store"
    (Invalid_argument "Seed_cache.store: theta length <> dof") (fun () ->
      Seed_cache.store c ~chain_id:0 ~dof:3 ~target:Vec3.zero [| 1. |]);
  (* non-finite targets neither store nor crash *)
  Seed_cache.store c ~chain_id:0 ~dof:1 ~target:(Vec3.make Float.nan 0. 0.) [| 1. |];
  Alcotest.(check int) "nan target not stored" 0 (Seed_cache.length c);
  Alcotest.(check (option reject)) "nan lookup misses" None
    (Seed_cache.find c ~chain_id:0 ~dof:1 (Vec3.make Float.nan 0. 0.))

(* Satellite property: whatever the operation history, a cache lookup only
   ever returns a usable seed — right dimension, every entry finite. *)
let test_cache_seeds_always_valid =
  QCheck.Test.make ~name:"cache returns only valid seeds (right DOF, finite)"
    ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = Seed_cache.create ~capacity:8 ~cell_size:0.25 () in
      let ok = ref true in
      let finds = ref 0 in
      for _ = 1 to 100 do
        let dof = if Rng.int rng 2 = 0 then 3 else 5 in
        let target =
          Vec3.make (Rng.uniform rng (-1.) 1.) (Rng.uniform rng (-1.) 1.)
            (Rng.uniform rng (-1.) 1.)
        in
        if Rng.int rng 2 = 0 then
          Seed_cache.store c ~chain_id:0 ~dof ~target
            (Vec.init dof (fun _ -> Rng.uniform rng (-3.) 3.))
        else begin
          incr finds;
          match Seed_cache.find c ~chain_id:0 ~dof target with
          | None -> ()
          | Some theta ->
            if Vec.dim theta <> dof || not (Array.for_all Float.is_finite theta)
            then ok := false
        end
      done;
      !ok
      && Seed_cache.hits c + Seed_cache.misses c = !finds
      && Seed_cache.length c <= 8)

(* Regression (chain-identity keying): two different robots with the same
   DOF count must not cross-pollinate seeds. *)
let test_cache_chain_keyed () =
  let a = Chain.fingerprint (Robots.eval_chain ~dof:12) in
  let b = Chain.fingerprint (Robots.snake ~dof:12) in
  Alcotest.(check bool) "distinct fingerprints" true (a <> b);
  let c = Seed_cache.create ~cell_size:0.1 () in
  let target = Vec3.make 0.25 0.25 0.25 in
  let theta = Array.make 12 0.5 in
  Seed_cache.store c ~chain_id:a ~dof:12 ~target theta;
  Alcotest.(check (option reject)) "equal-DOF stranger misses" None
    (Seed_cache.find c ~chain_id:b ~dof:12 target);
  Alcotest.(check bool) "owner still hits" true
    (Seed_cache.find c ~chain_id:a ~dof:12 target <> None)

(* ---- Scheduler ---- *)

let test_scheduler_map_positional () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 37 Fun.id in
  let serial = Scheduler.create () in
  let parallel = Scheduler.create ~pool () in
  let f x = x * x in
  let expect = Array.map (fun x -> Ok (f x)) xs in
  Alcotest.(check bool) "serial positional" true (Scheduler.map serial f xs = expect);
  Alcotest.(check bool) "parallel positional" true
    (Scheduler.map parallel f xs = expect)

let test_scheduler_captures_exceptions () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let sched = Scheduler.create ~pool () in
  let xs = Array.init 10 Fun.id in
  let results = Scheduler.map sched (fun x -> if x = 5 then failwith "boom" else x) xs in
  Array.iteri
    (fun i r ->
      match r with
      | Ok x -> Alcotest.(check int) (Printf.sprintf "item %d" i) i x
      | Error (Failure msg) ->
        Alcotest.(check int) "only item 5 fails" 5 i;
        Alcotest.(check string) "message kept" "boom" msg
      | Error _ -> Alcotest.fail "unexpected exception")
    results;
  (* the pool survives for the next wave *)
  Alcotest.(check bool) "pool reusable" true
    (Scheduler.map sched Fun.id xs = Array.map (fun x -> Ok x) xs)

(* prepare/commit interleaving is serial, in input order, and identical with
   and without a pool — the property the cache and metrics determinism rides
   on *)
let test_scheduler_chunk_phases () =
  let run pool =
    let sched = Scheduler.create ?pool ~chunk:3 () in
    let events = ref [] in
    let xs = Array.init 8 Fun.id in
    let out =
      Scheduler.map_chunked sched
        ~prepare:(fun i x ->
          events := `P i :: !events;
          x)
        ~work:(fun x -> 10 * x)
        ~commit:(fun i _ -> events := `C i :: !events)
        xs
    in
    (List.rev !events, out)
  in
  let serial_events, serial_out = run None in
  let pool = Pool.create 4 in
  let pooled_events, pooled_out =
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () -> run (Some pool)
  in
  let expected_events =
    [
      `P 0; `P 1; `P 2; `C 0; `C 1; `C 2;
      `P 3; `P 4; `P 5; `C 3; `C 4; `C 5;
      `P 6; `P 7; `C 6; `C 7;
    ]
  in
  Alcotest.(check bool) "serial phases in order" true (serial_events = expected_events);
  Alcotest.(check bool) "pooled phases identical" true (pooled_events = expected_events);
  Alcotest.(check bool) "results positional" true
    (serial_out = Array.init 8 (fun i -> Ok (10 * i)) && pooled_out = serial_out)

(* ---- Fallback ---- *)

let budget max_iterations = { Ik.default_config with Ik.max_iterations }

let test_fallback_first_solver_wins () =
  let p = (random_problems ~seed:7 1).(0) in
  let o =
    Fallback.run ~chain:[ Fallback.Quick_ik; Fallback.Dls ] ~config:(budget 3_000) p
  in
  Alcotest.(check bool) "converged" true (o.Fallback.result.Ik.status = Ik.Converged);
  Alcotest.(check bool) "primary solver" true (o.Fallback.solver = Fallback.Quick_ik);
  Alcotest.(check int) "no fallbacks" 0 o.Fallback.fallbacks;
  Alcotest.(check int) "one attempt" 1 o.Fallback.attempts

let test_fallback_chains_to_next () =
  (* JT-Serial on the ill-conditioned eval chain cannot converge in 5
     iterations; DLS picks it up *)
  let p = (random_problems ~seed:8 1).(0) in
  let o =
    Fallback.run
      ~chain:[ Fallback.Jt_serial; Fallback.Dls ]
      ~config:(budget 1_000) p
  in
  Alcotest.(check bool) "converged via fallback" true
    (o.Fallback.result.Ik.status = Ik.Converged);
  Alcotest.(check bool) "dls produced it" true (o.Fallback.solver = Fallback.Dls);
  Alcotest.(check int) "one fallback" 1 o.Fallback.fallbacks;
  Alcotest.(check int) "two attempts" 2 o.Fallback.attempts

let test_fallback_keeps_best_when_none_converge () =
  let rng = Rng.create 9 in
  let p =
    Ik.problem ~chain:eval12 ~target:(Target.unreachable rng eval12)
      ~theta0:(Target.random_config rng eval12)
  in
  let o =
    Fallback.run
      ~chain:[ Fallback.Jt_serial; Fallback.Quick_ik ]
      ~config:(budget 40) p
  in
  Alcotest.(check bool) "not converged" true
    (o.Fallback.result.Ik.status <> Ik.Converged);
  Alcotest.(check int) "whole chain tried" 2 o.Fallback.attempts;
  (* the reported result really is the best attempt: re-run both solvers *)
  let a = Jt_serial.solve ~config:(budget 40) p in
  let b = Quick_ik.solve ~speculations:64 ~config:(budget 40) p in
  let best = Float.min a.Ik.error b.Ik.error in
  Alcotest.(check (float 1e-12)) "best error kept" best o.Fallback.result.Ik.error

let test_fallback_empty_chain () =
  let p = (random_problems ~seed:10 1).(0) in
  Alcotest.check_raises "empty chain rejected"
    (Invalid_argument "Fallback.run: empty solver chain") (fun () ->
      ignore (Fallback.run ~chain:[] ~config:(budget 10) p))

let test_fallback_chain_parsing () =
  (match Fallback.chain_of_string "quick-ik, dls,sdls" with
  | Ok chain ->
    Alcotest.(check string) "round trip" "quick-ik,dls,sdls"
      (Fallback.chain_to_string chain)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "unknown solver rejected" true
    (Result.is_error (Fallback.chain_of_string "quick-ik,warp-drive"));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Fallback.chain_of_string ""))

(* Satellite property: whatever the problem (reachable or not) and however
   small the budget, a [Converged] outcome always carries an FK-verified
   error within accuracy. *)
let test_fallback_never_lies =
  QCheck.Test.make
    ~name:"fallback never reports Converged with FK error above accuracy"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let chain = Robots.eval_chain ~dof:(6 + Rng.int rng 10) in
      let target =
        if Rng.int rng 3 = 0 then Target.unreachable rng chain
        else Target.reachable rng chain
      in
      let p = Ik.problem ~chain ~target ~theta0:(Target.random_config rng chain) in
      let config = budget (10 + Rng.int rng 200) in
      let o =
        Fallback.run
          ~chain:[ Fallback.Quick_ik; Fallback.Dls; Fallback.Sdls ]
          ~config p
      in
      match o.Fallback.result.Ik.status with
      | Ik.Converged ->
        Ik.error_of chain target o.Fallback.result.Ik.theta
        <= config.Ik.accuracy +. 1e-12
      | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> true)

(* ---- Metrics ---- *)

let test_metrics_sums () =
  let m = Metrics.create () in
  Metrics.record m (Metrics.Rejected Ik.Nonfinite_target);
  Metrics.record m (Metrics.Faulted "Stack_overflow");
  Metrics.record m
    (Metrics.Solved
       {
         converged = true;
         diverged = false;
         fallbacks = 0;
         cache_hit = true;
         session = false;
         session_hit = false;
         deadline_exceeded = false;
         breaker_skips = 0;
         retries = 0;
         retry_converged = false;
         latency_s = 1e-3;
         iterations = 5;
       });
  Metrics.record m
    (Metrics.Solved
       {
         converged = true;
         diverged = false;
         fallbacks = 2;
         cache_hit = false;
         session = false;
         session_hit = false;
         deadline_exceeded = true;
         breaker_skips = 0;
         retries = 0;
         retry_converged = false;
         latency_s = 2e-3;
         iterations = 50;
       });
  Metrics.record m
    (Metrics.Solved
       {
         converged = false;
         diverged = true;
         fallbacks = 1;
         cache_hit = false;
         session = false;
         session_hit = false;
         deadline_exceeded = false;
         breaker_skips = 1;
         retries = 2;
         retry_converged = false;
         latency_s = 3e-3;
         iterations = 100;
       });
  let s = Metrics.snapshot m in
  Alcotest.(check int) "requests" 5 s.Metrics.requests;
  Alcotest.(check int) "converged" 2 s.Metrics.converged;
  Alcotest.(check int) "failed" 1 s.Metrics.failed;
  Alcotest.(check int) "rejected" 1 s.Metrics.rejected;
  Alcotest.(check int) "faulted" 1 s.Metrics.faulted;
  Alcotest.(check int) "fallback used" 2 s.Metrics.fallback_used;
  Alcotest.(check int) "deadline exceeded" 1 s.Metrics.deadline_exceeded;
  Alcotest.(check int) "cache split" 3 (s.Metrics.cache_hits + s.Metrics.cache_misses);
  Alcotest.(check int) "sum invariant" s.Metrics.requests
    (s.Metrics.converged + s.Metrics.failed + s.Metrics.rejected + s.Metrics.faulted);
  (match s.Metrics.latency with
  | Some l ->
    Alcotest.(check int) "latency samples" 3 l.Dadu_util.Histogram.n;
    Alcotest.(check (float 1e-12)) "latency max" 3e-3 l.Dadu_util.Histogram.max
  | None -> Alcotest.fail "expected latency samples");
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.snapshot m).Metrics.requests

let test_metrics_render () =
  let m = Metrics.create () in
  Metrics.record m
    (Metrics.Solved
       {
         converged = true;
         diverged = false;
         fallbacks = 0;
         cache_hit = false;
         session = false;
         session_hit = false;
         deadline_exceeded = false;
         breaker_skips = 0;
         retries = 0;
         retry_converged = false;
         latency_s = 5e-4;
         iterations = 7;
       });
  let rendered = Metrics.render (Metrics.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %s" needle) true
        (Astring.String.is_infix ~affix:needle rendered))
    [
      "requests"; "converged"; "cache hits"; "deadline exceeded"; "latency p50";
      "latency p99"; "iterations p95";
    ]

(* ---- Service ---- *)

let service_config ?(solvers = [ Fallback.Quick_ik; Fallback.Dls ]) ?(chunk = 8) () =
  { Service.default_config with Service.solvers; chunk; max_iterations = 1_500 }

(* A heterogeneous batch: two chains, with every 12-DOF target revisited
   later in the batch (different random start), far enough apart to land in
   a different chunk. *)
let mixed_batch ~seed n =
  let rng = Rng.create seed in
  let arm = Robots.arm_7dof () in
  let base =
    Array.init n (fun i ->
        if i mod 3 = 0 then Ik.random_problem rng arm
        else Ik.random_problem rng eval12)
  in
  let revisits =
    Array.map
      (fun (p : Ik.problem) ->
        { p with Ik.theta0 = Target.random_config rng p.Ik.chain })
      base
  in
  Array.append base revisits

let strip_latency = function
  | Service.Solved
      {
        result;
        solver;
        fallbacks;
        cache_hit;
        session_hit;
        deadline_exceeded;
        breaker_skips;
        retries;
        retry_converged;
        trail;
        latency_s = _;
      } ->
    `Solved
      ( result,
        solver,
        fallbacks,
        cache_hit,
        session_hit,
        deadline_exceeded,
        breaker_skips,
        retries,
        retry_converged,
        trail )
  | Service.Rejected invalid -> `Rejected invalid
  | Service.Faulted msg -> `Faulted msg

(* Acceptance: byte-identical results across pool sizes 1 and N. *)
let test_service_determinism_across_pool_sizes () =
  let problems = mixed_batch ~seed:2017 18 in
  let solo =
    let s = Service.create ~config:(service_config ()) () in
    Array.map strip_latency (Service.solve_batch s problems)
  in
  let pooled =
    let pool = Pool.create (Stdlib.max 2 (Pool.recommended_size ())) in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let s = Service.create ~pool ~config:(service_config ()) () in
    Array.map strip_latency (Service.solve_batch s problems)
  in
  (* structural equality on float arrays is byte equality (no NaNs here) *)
  Alcotest.(check bool) "replies byte-identical across pool sizes" true (solo = pooled)

let test_service_warm_start_hits () =
  let problems = mixed_batch ~seed:5 12 in
  let s = Service.create ~config:(service_config ()) () in
  let replies = Service.solve_batch s problems in
  let m = Service.metrics s in
  Alcotest.(check int) "all answered" (Array.length problems) (Array.length replies);
  Alcotest.(check bool) "revisits hit the cache" true (m.Metrics.cache_hits > 0);
  Alcotest.(check bool) "cache populated" true (Service.cache_length s > 0);
  (* a warm-started revisit of a solved target converges *)
  Array.iteri
    (fun i r ->
      match r with
      | Service.Solved { cache_hit = true; result; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "warm-started %d converged" i)
          true
          (result.Ik.status = Ik.Converged)
      | _ -> ())
    replies

let test_service_counter_consistency () =
  let rng = Rng.create 11 in
  let good = mixed_batch ~seed:23 6 in
  let nan_target =
    { (Ik.random_problem rng eval12) with Ik.target = Vec3.make Float.nan 0. 0. }
  in
  let wrong_dof = { (Ik.random_problem rng eval12) with Ik.theta0 = Vec.create 3 } in
  let unreachable =
    Ik.problem ~chain:eval12 ~target:(Target.unreachable rng eval12)
      ~theta0:(Target.random_config rng eval12)
  in
  let problems = Array.concat [ good; [| nan_target; wrong_dof; unreachable |] ] in
  let s =
    Service.create
      ~config:{ (service_config ()) with Service.max_iterations = 60 }
      ()
  in
  let replies = Service.solve_batch s problems in
  let m = Service.metrics s in
  Alcotest.(check int) "requests = batch size" (Array.length problems) m.Metrics.requests;
  Alcotest.(check int) "converged + failed + rejected + faulted = requests"
    m.Metrics.requests
    (m.Metrics.converged + m.Metrics.failed + m.Metrics.rejected + m.Metrics.faulted);
  Alcotest.(check int) "rejected both malformed" 2 m.Metrics.rejected;
  Alcotest.(check int) "lookups = dispatched"
    (m.Metrics.requests - m.Metrics.rejected - m.Metrics.faulted)
    (m.Metrics.cache_hits + m.Metrics.cache_misses);
  Alcotest.(check bool) "unreachable failed, not crashed" true (m.Metrics.failed >= 1);
  (* typed rejections land at the right positions *)
  (match replies.(Array.length good) with
  | Service.Rejected Ik.Nonfinite_target -> ()
  | _ -> Alcotest.fail "expected Rejected Nonfinite_target");
  match replies.(Array.length good + 1) with
  | Service.Rejected (Ik.Dof_mismatch _) -> ()
  | _ -> Alcotest.fail "expected Rejected Dof_mismatch"

let test_service_fallback_counted () =
  let rng = Rng.create 13 in
  let p = Ik.random_problem rng eval12 in
  let s =
    Service.create
      ~config:
        {
          (service_config ~solvers:[ Fallback.Jt_serial; Fallback.Dls ] ()) with
          Service.max_iterations = 1_000;
        }
      ()
  in
  (match (Service.solve_batch s [| p |]).(0) with
  | Service.Solved { solver; fallbacks; result; _ } ->
    Alcotest.(check bool) "converged" true (result.Ik.status = Ik.Converged);
    Alcotest.(check bool) "dls after jt-serial" true (solver = Fallback.Dls);
    Alcotest.(check int) "one fallback" 1 fallbacks
  | _ -> Alcotest.fail "expected a solved reply");
  let m = Service.metrics s in
  Alcotest.(check int) "fallback_used" 1 m.Metrics.fallback_used

let test_service_empty_batch () =
  let s = Service.create () in
  Alcotest.(check int) "empty batch" 0 (Array.length (Service.solve_batch s [||]));
  Alcotest.(check int) "no requests" 0 (Service.metrics s).Metrics.requests

let test_service_invalid_config () =
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Service.create: empty solver chain") (fun () ->
      ignore
        (Service.create ~config:{ Service.default_config with Service.solvers = [] } ()));
  Alcotest.check_raises "bad speculations"
    (Invalid_argument "Service.create: speculations must be positive") (fun () ->
      ignore
        (Service.create
           ~config:{ Service.default_config with Service.speculations = 0 }
           ()))

(* Property: counters stay consistent and replies stay positional for
   arbitrary batch sizes and chunk sizes. *)
let test_service_counters_property =
  QCheck.Test.make ~name:"metrics counters sum consistently" ~count:25
    QCheck.(pair (int_range 0 24) (int_range 1 9))
    (fun (n, chunk) ->
      let problems = random_problems ~seed:(n + (100 * chunk)) n in
      let s =
        Service.create
          ~config:{ (service_config ~chunk ()) with Service.max_iterations = 300 }
          ()
      in
      let replies = Service.solve_batch s problems in
      let m = Service.metrics s in
      Array.length replies = n
      && m.Metrics.requests = n
      && m.Metrics.converged + m.Metrics.failed + m.Metrics.rejected + m.Metrics.faulted
         = n
      && m.Metrics.cache_hits + m.Metrics.cache_misses
         = n - m.Metrics.rejected - m.Metrics.faulted)

(* ---- deadlines: scheduler expiry under a fake clock ---- *)

(* The clock is called once for the batch epoch and once per serial
   prepare, so with a tick-per-call fake the elapsed time at item [i]'s
   prepare is exactly [i + 1] — expiry becomes a pure function of the
   index, testable without sleeping. *)
let test_scheduler_deadline_expiry () =
  let sched = Scheduler.create ~chunk:3 () in
  let ticks = ref (-1) in
  let now () =
    incr ticks;
    float_of_int !ticks
  in
  let xs = Array.init 8 Fun.id in
  let elapsed_seen = ref [] in
  let out =
    Scheduler.map_deadlined sched ~now ~budget_s:6.5
      ~deadline_s:(fun i -> if i mod 2 = 1 then Some 0. else None)
      ~prepare:(fun d x ->
        elapsed_seen := d.Scheduler.elapsed_s :: !elapsed_seen;
        Alcotest.(check int) "prepare sees its index" x d.Scheduler.index;
        (x, d.Scheduler.expired))
      ~work:Fun.id
      ~commit:(fun _ _ -> ())
      xs
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok (x, expired) ->
        Alcotest.(check int) "positional" i x;
        (* elapsed at item i is i+1: odd items die on their 0 s deadline,
           items 6 and 7 on the 6.5 s budget (elapsed 7 and 8) *)
        let expect = i mod 2 = 1 || i + 1 >= 7 in
        Alcotest.(check bool) (Printf.sprintf "expiry of %d" i) expect expired
      | Error _ -> Alcotest.fail "no work item should fail")
    out;
  Alcotest.(check (list (float 1e-9)))
    "elapsed is the prepare call number"
    [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ]
    (List.rev !elapsed_seen)

(* Without deadlines or a budget the clock is read but cannot change
   anything: even a clock running wildly backwards yields expired=false
   everywhere. *)
let test_scheduler_no_deadline_ignores_clock () =
  let sched = Scheduler.create ~chunk:2 () in
  let rng = Rng.create 99 in
  let now () = Rng.uniform rng (-1e9) 1e9 in
  let out =
    Scheduler.map_deadlined sched ~now
      ~prepare:(fun d () -> d.Scheduler.expired)
      ~work:Fun.id
      ~commit:(fun _ _ -> ())
      (Array.make 7 ())
  in
  Array.iter
    (function
      | Ok expired ->
        Alcotest.(check bool) "never expired without limits" false expired
      | Error _ -> Alcotest.fail "no work item should fail")
    out

(* ---- deadlines: the serving layer ---- *)

let test_service_all_expired () =
  let problems = random_problems ~seed:77 6 in
  let requests = Array.map (fun p -> Service.request p) problems in
  let s = Service.create ~config:(service_config ()) () in
  let replies = Service.solve_requests ~budget_s:0. s requests in
  Array.iteri
    (fun i r ->
      match r with
      | Service.Solved { deadline_exceeded; fallbacks; solver; _ } ->
        Alcotest.(check bool) (Printf.sprintf "%d tagged" i) true deadline_exceeded;
        Alcotest.(check int) (Printf.sprintf "%d no fallbacks" i) 0 fallbacks;
        Alcotest.(check bool)
          (Printf.sprintf "%d served by the cheapest tier" i)
          true (solver = Fallback.Quick_ik)
      | _ -> Alcotest.fail "expected a solved reply")
    replies;
  let m = Service.metrics s in
  Alcotest.(check int) "all counted deadline-exceeded" 6 m.Metrics.deadline_exceeded;
  Alcotest.(check int) "no fallback counted" 0 m.Metrics.fallback_used;
  Alcotest.(check int) "lookups still happen for expired requests"
    m.Metrics.requests
    (m.Metrics.cache_hits + m.Metrics.cache_misses)

let test_service_mixed_deadlines () =
  let problems = random_problems ~seed:78 6 in
  let requests =
    Array.mapi
      (fun i p ->
        if i mod 2 = 0 then Service.request ~deadline_s:0. p else Service.request p)
      problems
  in
  let s = Service.create ~config:(service_config ()) () in
  let replies = Service.solve_requests s requests in
  Array.iteri
    (fun i r ->
      match r with
      | Service.Solved { deadline_exceeded; fallbacks; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "%d expiry matches its deadline" i)
          (i mod 2 = 0) deadline_exceeded;
        if i mod 2 = 0 then
          Alcotest.(check int) (Printf.sprintf "%d short-circuited" i) 0 fallbacks
      | _ -> Alcotest.fail "expected a solved reply")
    replies;
  Alcotest.(check int) "three expired" 3 (Service.metrics s).Metrics.deadline_exceeded;
  Alcotest.check_raises "negative deadline rejected"
    (Invalid_argument "Service.request: deadline_s must be non-negative") (fun () ->
      ignore (Service.request ~deadline_s:(-0.1) problems.(0)))

(* Acceptance: the deterministic path is byte-identical across pool sizes
   1/2/4 for batch sizes drawn from 1..64. *)
let test_service_parallel_determinism =
  QCheck.Test.make ~name:"replies identical across pool sizes 1/2/4" ~count:8
    QCheck.(int_range 1 64)
    (fun n ->
      let problems = random_problems ~seed:(3000 + n) n in
      let run pool =
        let s =
          Service.create ?pool
            ~config:{ (service_config ~chunk:7 ()) with Service.max_iterations = 250 }
            ()
        in
        Array.map strip_latency (Service.solve_batch s problems)
      in
      let solo = run None in
      List.for_all
        (fun size ->
          let pool = Pool.create size in
          Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
          run (Some pool) = solo)
        [ 2; 4 ])

(* ---- multi-seed speculative starts ---- *)

(* The same regression end to end: a converged solve on one chain must not
   warm-start an equal-DOF different chain aimed at the same target. *)
let test_service_no_cross_chain_warm_start () =
  let planar6 = Robots.planar ~dof:6 ~reach:6. () in
  let eval6 = Robots.eval_chain ~dof:6 in
  Alcotest.(check int) "same dof" (Chain.dof planar6) (Chain.dof eval6);
  let target = Vec3.make 2.0 1.0 0.0 in
  let rng = Rng.create 31 in
  let prob chain =
    Ik.problem ~chain ~target ~theta0:(Target.random_config rng chain)
  in
  let s = Service.create ~config:(service_config ()) () in
  (match (Service.solve_batch s [| prob planar6 |]).(0) with
  | Service.Solved { result; _ } ->
    Alcotest.(check bool) "first chain converges" true
      (result.Ik.status = Ik.Converged)
  | _ -> Alcotest.fail "expected Solved");
  let replies = Service.solve_batch s [| prob eval6; prob planar6 |] in
  (match replies.(0) with
  | Service.Solved { cache_hit; _ } ->
    Alcotest.(check bool) "equal-DOF stranger gets no warm start" false
      cache_hit
  | _ -> Alcotest.fail "expected Solved");
  match replies.(1) with
  | Service.Solved { cache_hit; _ } ->
    Alcotest.(check bool) "same chain still warm-starts" true cache_hit
  | _ -> Alcotest.fail "expected Solved"

let seeded_config ?(candidates = 4) ~library () =
  {
    (service_config ~chunk:7 ()) with
    Service.max_iterations = 250;
    seed_library = Some library;
    seed_candidates = candidates;
  }

(* Satellite pin: --seed-candidates 1 is the classic path — replies and
   cache hit/miss behaviour are bitwise unchanged even with a library
   configured. *)
let test_seed_candidates_one_is_classic_path () =
  let problems = mixed_batch ~seed:411 12 in
  let run config =
    let s = Service.create ~config () in
    let replies = Array.map strip_latency (Service.solve_batch s problems) in
    let m = Service.metrics s in
    (replies, m.Metrics.cache_hits, m.Metrics.cache_misses)
  in
  let library = Posture_library.build ~chain:eval12 ~count:64 ~seed:5 () in
  let classic = run (service_config ~chunk:7 ()) in
  let seeded1 = run (seeded_config ~candidates:1 ~library ()) in
  Alcotest.(check bool)
    "seed_candidates=1 leaves replies and cache counters untouched" true
    (classic = seeded1)

(* Acceptance: with speculative seeding enabled (library + multi-seed),
   replies are byte-identical across pool sizes 1/2/4 and across lockstep
   on/off. *)
let test_seeded_determinism =
  QCheck.Test.make
    ~name:"seeded replies identical across pools 1/2/4 x lockstep on/off"
    ~count:6
    QCheck.(int_range 1 40)
    (fun n ->
      let problems = mixed_batch ~seed:(7000 + n) n in
      let library = Posture_library.build ~chain:eval12 ~count:64 ~seed:9 () in
      let run pool lockstep =
        let s =
          Service.create ?pool
            ~config:{ (seeded_config ~library ()) with Service.lockstep }
            ()
        in
        Array.map strip_latency (Service.solve_batch s problems)
      in
      let reference = run None false in
      List.for_all
        (fun (size, lockstep) ->
          let same =
            match size with
            | None -> run None lockstep = reference
            | Some size ->
              let pool = Pool.create size in
              Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
              run (Some pool) lockstep = reference
          in
          same)
        [
          (None, true);
          (Some 2, false);
          (Some 2, true);
          (Some 4, false);
          (Some 4, true);
        ])

(* Tentpole acceptance: the snapshot-prepare path (frozen wave snapshot +
   wave-fused SoA candidate scoring) produces replies byte-identical to
   the per-request serial prepare — across pool sizes 1/2/4, candidate
   counts S in 1..8, mixed DOF from 3 to 100 in one wave, and with a
   fault plan armed (fault forks are frozen into the snapshot). *)
let test_snapshot_prepare_determinism =
  QCheck.Test.make
    ~name:
      "snapshot-prepare replies identical to serial prepare (pools 1/2/4, S \
       1..8, mixed DOF, faults)"
    ~count:5
    QCheck.(pair (int_range 1 10) (int_range 1 8))
    (fun (n, candidates) ->
      (* shrinkers may probe below the generator's lower bound *)
      let n = max 1 n and candidates = max 1 candidates in
      let chains =
        [|
          Robots.eval_chain ~dof:3;
          eval12;
          Robots.eval_chain ~dof:47;
          Robots.eval_chain ~dof:100;
        |]
      in
      let rng = Rng.create (9000 + n + (131 * candidates)) in
      let problems =
        Array.init n (fun i -> Ik.random_problem rng chains.(i mod 4))
      in
      let library = Posture_library.build ~chain:eval12 ~count:32 ~seed:9 () in
      let fault =
        Dadu_util.Fault.arm ~seed:7
          [
            {
              Dadu_util.Fault.site = "solver-nan";
              trigger = Dadu_util.Fault.First 2;
              arg = 0.;
            };
          ]
      in
      let run pool snapshot_prepare =
        let s =
          Service.create ?pool
            ~config:
              {
                (seeded_config ~candidates ~library ()) with
                Service.snapshot_prepare;
                fault;
                max_iterations = 150;
              }
            ()
        in
        (* Marshal bytes, not [=]: the armed solver-nan fault writes NaN
           into theta and NaN <> NaN structurally — the serialized bytes
           are the actual "byte-identical" pin. *)
        Array.map
          (fun r -> Marshal.to_string (strip_latency r) [])
          (Service.solve_batch s problems)
      in
      let reference = run None false in
      List.for_all
        (fun size ->
          match size with
          | None -> run None true = reference
          | Some size ->
            let pool = Pool.create size in
            Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
            run (Some pool) true = reference)
        [ None; Some 1; Some 2; Some 4 ])

(* The wave-phase breakdown accounts the batch: all three phases record
   time, and the snapshot path books its candidate scoring under the
   prepare phase (per-phase workspace accounting is monotone). *)
let test_phase_breakdown_records () =
  let problems = mixed_batch ~seed:271 10 in
  let library = Posture_library.build ~chain:eval12 ~count:32 ~seed:4 () in
  let s =
    Service.create
      ~config:{ (seeded_config ~library ()) with Service.snapshot_prepare = true }
      ()
  in
  ignore (Service.solve_batch s problems);
  let m = Service.metrics s in
  Alcotest.(check bool) "prepare time recorded" true (m.Metrics.prepare_s > 0.);
  Alcotest.(check bool) "work time recorded" true (m.Metrics.work_s > 0.);
  Alcotest.(check bool) "commit time recorded" true (m.Metrics.commit_s > 0.);
  (match Metrics.serial_fraction m with
  | Some f -> Alcotest.(check bool) "serial fraction in (0,1]" true (f > 0. && f <= 1.)
  | None -> Alcotest.fail "expected a serial fraction");
  Service.reset_metrics s;
  let m = Service.metrics s in
  Alcotest.(check bool) "reset clears phase accumulators" true
    (m.Metrics.prepare_s = 0. && m.Metrics.work_s = 0. && m.Metrics.commit_s = 0.)

(* The selector's winner beats or matches every request's own start by
   construction, and the metrics provenance counters account for every
   valid request exactly once. *)
let test_seeded_metrics_accounting () =
  let problems = random_problems ~seed:99 10 in
  let library = Posture_library.build ~chain:eval12 ~count:64 ~seed:3 () in
  let s = Service.create ~config:(seeded_config ~library ()) () in
  ignore (Service.solve_batch s problems);
  let m = Service.metrics s in
  Alcotest.(check int) "every request offered a library candidate" 10
    m.Metrics.library_hits;
  Alcotest.(check int) "seed wins partition the batch" 10
    (m.Metrics.seed_theta0_wins + m.Metrics.seed_cache_wins
    + m.Metrics.seed_library_wins + m.Metrics.seed_zero_wins
    + m.Metrics.seed_perturbed_wins)

(* ---- tracing ---- *)

let test_service_trace_spans () =
  let problems = random_problems ~seed:79 4 in
  problems.(1) <- { problems.(1) with Ik.theta0 = Vec.create 3 };
  let requests = Array.map (fun p -> Service.request p) problems in
  let trace = Trace.create () in
  let s = Service.create ~config:(service_config ()) () in
  let replies = Service.solve_requests ~trace s requests in
  Alcotest.(check int) "all answered" 4 (Array.length replies);
  let spans = Trace.spans trace in
  Alcotest.(check int) "length counts every span" (List.length spans)
    (Trace.length trace);
  (* compared as multisets: spans sort by start time, and two spans of one
     request can share a clock reading *)
  let phases i =
    List.filter_map
      (fun (sp : Trace.span) -> if sp.Trace.request = i then Some sp.Trace.phase else None)
      spans
    |> List.sort compare
  in
  (* the rejected request never reaches the solve phase *)
  Alcotest.(check (list string)) "rejected: prepare and commit only"
    [ "commit"; "prepare" ] (phases 1);
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "request %d spans" i)
        [ "commit"; "fallback-tier"; "prepare"; "solve" ]
        (phases i))
    [ 0; 2; 3 ];
  List.iter
    (fun (sp : Trace.span) ->
      Alcotest.(check bool) "start offsets are non-negative" true (sp.Trace.start_s >= 0.);
      Alcotest.(check bool) "durations are non-negative" true (sp.Trace.dur_s >= 0.);
      if sp.Trace.phase = "fallback-tier" then begin
        Alcotest.(check bool) "tier spans name their solver" true
          (List.mem_assoc "solver" sp.Trace.attrs);
        Alcotest.(check bool) "tier spans carry a status" true
          (List.mem_assoc "status" sp.Trace.attrs)
      end)
    spans;
  (* every line of the export is standalone JSON with the span fields *)
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl trace)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one JSON line per span" (Trace.length trace)
    (List.length lines);
  List.iter
    (fun line ->
      match Dadu_util.Json.of_string line with
      | Error msg -> Alcotest.fail (Printf.sprintf "bad JSONL line %S: %s" line msg)
      | Ok json ->
        Alcotest.(check bool) "has request" true
          (Dadu_util.Json.member "request" json <> None);
        Alcotest.(check bool) "has phase" true
          (Dadu_util.Json.member "phase" json <> None))
    lines

(* ---- trajectory sessions ---- *)

let eval30 = Robots.eval_chain ~dof:30

(* a short Cartesian line through eval:30's workspace, 3 cm steps — the
   temporal-coherence workload the session slot exists for *)
let line_waypoints ?(start = Vec3.make 4.0 1.0 2.0) ?(step = 0.03) n =
  Array.init n (fun i ->
      Vec3.make start.Vec3.x (start.Vec3.y +. (float_of_int i *. step)) start.Vec3.z)

let session_requests ?(chain = eval30) sess targets =
  Array.map
    (fun target ->
      let theta0 = Chain.clamp_config chain (Vec.create (Chain.dof chain)) in
      Service.request ~session:sess
        ~ordinal:(Session.next_ordinal sess)
        (Ik.problem ~chain ~target ~theta0))
    targets

(* Acceptance pin: warm-started waypoints average <= 4 Quick-IK
   iterations at 30 DOF, against a cold start in the tens. *)
let test_session_warm_iteration_pin () =
  let sess = Session.create ~name:"pin" ~chain:eval30 in
  let requests = session_requests sess (line_waypoints ~step:0.02 12) in
  let s = Service.create ~config:(service_config ~chunk:8 ()) () in
  let replies = Service.solve_requests s requests in
  let iters = ref [] and cold = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Service.Solved { result; session_hit; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "waypoint %d converged" i)
          true
          (result.Ik.status = Ik.Converged);
        Alcotest.(check bool)
          (Printf.sprintf "waypoint %d warm iff not first" i)
          (i > 0) session_hit;
        if i = 0 then cold := result.Ik.iterations
        else iters := result.Ik.iterations :: !iters
      | _ -> Alcotest.fail "expected Solved")
    replies;
  let warm = List.map float_of_int !iters in
  let mean = List.fold_left ( +. ) 0. warm /. float_of_int (List.length warm) in
  Alcotest.(check bool)
    (Printf.sprintf "warm mean %.2f iters <= 4" mean)
    true (mean <= 4.);
  Alcotest.(check bool)
    (Printf.sprintf "cold start works hard (%d iters)" !cold)
    true
    (!cold > 20);
  let m = Service.metrics s in
  Alcotest.(check int) "all session requests" 12 m.Metrics.session_requests;
  Alcotest.(check int) "all but the first warm" 11 m.Metrics.session_warm;
  Alcotest.(check int) "sessions bypass the shared cache" 0
    (m.Metrics.cache_hits + m.Metrics.cache_misses)

(* Satellite fix: two waypoints of one session landing in one scheduler
   chunk must still see each other's results — the wave cut makes the
   earlier ordinal's commit visible to the later one's prepare, and the
   shared seed cache (here poisoned with a junk seed at the second
   waypoint's cell) never enters the picture. *)
let test_session_intra_wave_ordering () =
  let targets = line_waypoints 2 in
  let solve_chunked chunk =
    let sess = Session.create ~name:"wave" ~chain:eval30 in
    let s = Service.create ~config:(service_config ~chunk ()) () in
    (* poison: a junk-but-valid seed sitting exactly where waypoint 1's
       cache lookup would land *)
    Seed_cache.store
      (Service.seed_cache s)
      ~chain_id:(Chain.fingerprint eval30)
      ~dof:30 ~target:targets.(1)
      (Array.make 30 0.7);
    Array.map strip_latency
      (Service.solve_requests s (session_requests sess targets))
  in
  (* chunk 8: both waypoints land in one chunk; the cut must split them *)
  let together = solve_chunked 8 in
  (* chunk 1: waypoints in separate waves by construction — ground truth *)
  let apart = solve_chunked 1 in
  Alcotest.(check bool) "same replies whether or not they share a chunk" true
    (together = apart);
  match together.(1) with
  | `Solved (_, _, _, cache_hit, session_hit, _, _, _, _, _) ->
    Alcotest.(check bool) "second waypoint warm from the slot" true session_hit;
    Alcotest.(check bool) "poisoned cache never consulted" false cache_hit
  | _ -> Alcotest.fail "expected Solved"

(* Session replies must not change when the session is created against a
   different robot than the waypoints claim: the fingerprint guard serves
   the mismatched waypoint cold instead of feeding it a wrong-DOF seed. *)
let test_session_chain_mismatch_serves_cold () =
  let sess = Session.create ~name:"mismatch" ~chain:(Robots.eval_chain ~dof:7) in
  let requests = session_requests sess (line_waypoints 2) in
  let s = Service.create ~config:(service_config ()) () in
  let replies = Service.solve_requests s requests in
  Array.iter
    (fun r ->
      match r with
      | Service.Solved { session_hit; _ } ->
        Alcotest.(check bool) "mismatched chain never warm" false session_hit
      | _ -> Alcotest.fail "expected Solved")
    replies

(* Tentpole acceptance (DESIGN.md §15): a session's replies are a pure
   function of its own waypoint sequence.  Riffle session A's waypoints
   against another session's and one-shot noise in a random arrival
   order (each stream's own order preserved, as connection readers
   guarantee) — A's replies must be byte-identical to A running alone. *)
let test_session_interleaving_independence =
  QCheck.Test.make
    ~name:"session replies independent of connection interleaving" ~count:8
    QCheck.(pair (int_range 2 8) (int_range 0 100_000))
    (fun (n, salt) ->
      let n = max 2 n in
      let targets = line_waypoints n in
      let alone =
        let sess = Session.create ~name:"A" ~chain:eval30 in
        let s = Service.create ~config:(service_config ~chunk:8 ()) () in
        Array.map strip_latency
          (Service.solve_requests s (session_requests sess targets))
      in
      let interleaved =
        let sess_a = Session.create ~name:"A" ~chain:eval30 in
        let sess_b = Session.create ~name:"B" ~chain:eval12 in
        let a = session_requests sess_a targets in
        let b =
          session_requests ~chain:eval12 sess_b
            (Array.map
               (fun t -> Vec3.make (t.Vec3.y +. 1.5) 1.0 1.0)
               (line_waypoints n))
        in
        let noise =
          Array.map (fun p -> Service.request p) (random_problems ~seed:salt n)
        in
        (* deterministic riffle keyed by the salt: pick the next element
           of stream (salt+k mod 3), preserving each stream's order *)
        let streams = [| Queue.create (); Queue.create (); Queue.create () |] in
        Array.iter (fun r -> Queue.add r streams.(0)) a;
        Array.iter (fun r -> Queue.add r streams.(1)) b;
        Array.iter (fun r -> Queue.add r streams.(2)) noise;
        let order = ref [] in
        let k = ref salt in
        while Array.exists (fun q -> not (Queue.is_empty q)) streams do
          let q = streams.(!k mod 3) in
          if not (Queue.is_empty q) then order := Queue.pop q :: !order;
          incr k
        done;
        let requests = Array.of_list (List.rev !order) in
        let s = Service.create ~config:(service_config ~chunk:8 ()) () in
        let replies = Service.solve_requests s requests in
        (* collect A's replies back in ordinal order *)
        let out = Array.make n None in
        Array.iteri
          (fun i rq ->
            match (rq.Service.session, rq.Service.ordinal) with
            | Some sess, Some o when sess == sess_a ->
              out.(o) <- Some (strip_latency replies.(i))
            | _ -> ())
          requests;
        Array.map Option.get out
      in
      interleaved = alone)

(* Acceptance: session replies byte-identical across pool sizes 1/2/4 and
   the lockstep / snapshot-prepare execution modes (the serve-live CI job
   asserts the same with cmp on reply dumps). *)
let test_session_determinism_modes =
  QCheck.Test.make
    ~name:"session replies identical across pools 1/2/4 x lockstep x snapshot"
    ~count:4
    QCheck.(int_range 2 8)
    (fun n ->
      let n = max 2 n in
      let targets = line_waypoints n in
      let run pool lockstep snapshot_prepare =
        let sess_a = Session.create ~name:"A" ~chain:eval30 in
        let sess_b = Session.create ~name:"B" ~chain:eval12 in
        let a = session_requests sess_a targets in
        let b =
          session_requests ~chain:eval12 sess_b
            (Array.map
               (fun t -> Vec3.make (t.Vec3.y +. 1.5) 1.0 1.0)
               (line_waypoints n))
        in
        let requests =
          Array.concat
            [ Array.init (2 * n) (fun i -> if i mod 2 = 0 then a.(i / 2) else b.(i / 2)) ]
        in
        let config =
          { (service_config ~chunk:8 ()) with Service.lockstep; snapshot_prepare }
        in
        let s = Service.create ?pool ~config () in
        Array.map strip_latency (Service.solve_requests s requests)
      in
      let reference = run None false false in
      List.for_all
        (fun (size, lockstep, snapshot) ->
          let same =
            match size with
            | None -> run None lockstep snapshot = reference
            | Some size ->
              let pool = Pool.create size in
              Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
              run (Some pool) lockstep snapshot = reference
          in
          same)
        [
          (None, true, false);
          (None, false, true);
          (None, true, true);
          (Some 2, false, false);
          (Some 2, true, true);
          (Some 4, false, true);
          (Some 4, true, false);
        ])

(* ---- Problem_file ---- *)

let test_problem_file_parses () =
  let text =
    "# demo\n\
     robot eval:12\n\
     random 3 seed=9\n\
     target 6.0,2.0,1.0\n\
     target 6.0,2.0,1.0 theta0=0,0,0,0,0,0,0,0,0,0,0,0  # warm\n\
     robot arm7\n\
     target 0.4,0.3,0.5\n"
  in
  match Problem_file.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok problems ->
    Alcotest.(check int) "six problems" 6 (Array.length problems);
    Alcotest.(check int) "eval dof" 12 (Chain.dof problems.(3).Ik.chain);
    Alcotest.(check int) "arm dof" 7 (Chain.dof problems.(5).Ik.chain);
    Alcotest.(check (float 1e-12)) "target x" 6.0 problems.(3).Ik.target.Vec3.x;
    Array.iter
      (fun p -> Alcotest.(check bool) "all valid" true (Ik.validate p = Ok ()))
      problems

let expect_error text needle =
  match Problem_file.parse text with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected error mentioning %S" needle)
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" msg needle)
      true
      (Astring.String.is_infix ~affix:needle msg)

let test_problem_file_errors () =
  expect_error "target 1,2,3\n" "line 1: target before any robot";
  expect_error "robot hexapod\n" "unknown robot";
  expect_error "robot eval:12\ntarget 1,2\n" "expected target x,y,z";
  expect_error "robot eval:12\ntarget 1,2,3 theta0=0,0\n" "theta0 has 2 entries";
  expect_error "robot eval:12\nrandom nope\n" "expected random <count>";
  expect_error "robot eval:12\nwarp 9\n" "unknown declaration";
  expect_error "robot eval:12\n# fine\nrandom -3\n" "line 3"

let test_problem_file_deadlines () =
  let text =
    "robot eval:12\n\
     target 6.0,2.0,1.0 deadline=0.5\n\
     random 2 seed=3 deadline=1\n\
     target 6.0,2.0,1.0\n\
     target 6.0,2.0,1.0 theta0=0,0,0,0,0,0,0,0,0,0,0,0 deadline=0\n"
  in
  match Problem_file.parse_requests text with
  | Error msg -> Alcotest.fail msg
  | Ok entries ->
    Alcotest.(check int) "five requests" 5 (Array.length entries);
    Alcotest.(check (list (option (float 1e-12))))
      "deadlines attach per line (random lines to every drawn problem)"
      [ Some 0.5; Some 1.; Some 1.; None; Some 0. ]
      (Array.to_list
         (Array.map (fun (e : Problem_file.entry) -> e.Problem_file.deadline_s) entries));
    (* parse drops the deadlines but yields the same problems *)
    (match Problem_file.parse text with
    | Error msg -> Alcotest.fail msg
    | Ok problems ->
      Alcotest.(check bool) "parse and parse_requests agree on problems" true
        (Array.for_all2
           (fun (p : Ik.problem) (e : Problem_file.entry) ->
             p.Ik.target = e.Problem_file.problem.Ik.target)
           problems entries))

let test_problem_file_deadline_errors () =
  expect_error "robot eval:12\ntarget 1,2,3 deadline=-1\n"
    "line 2: deadline must be a non-negative number";
  expect_error "robot eval:12\ntarget 1,2,3 deadline=soon\n"
    "deadline must be a non-negative number (got \"soon\")";
  expect_error "robot eval:12\nrandom 2 deadline=nan\n"
    "deadline must be a non-negative number"

let test_problem_file_random_deterministic () =
  let text = "robot eval:12\nrandom 4 seed=3\n" in
  match (Problem_file.parse text, Problem_file.parse text) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "same problems" true
      (Array.for_all2
         (fun (p : Ik.problem) (q : Ik.problem) ->
           p.Ik.target = q.Ik.target && p.Ik.theta0 = q.Ik.theta0)
         a b)
  | _ -> Alcotest.fail "parse failed"

(* ---- Breaker (per-solver circuit state machine) ---- *)

module Fault = Dadu_util.Fault

let breaker_state =
  let pp fmt s =
    Format.pp_print_string fmt
      (match s with
      | Breaker.Closed -> "closed"
      | Breaker.Open -> "open"
      | Breaker.Half_open -> "half-open")
  in
  Alcotest.testable pp ( = )

let test_breaker_trips_on_threshold () =
  let b = Breaker.create { Breaker.threshold = 3; cooldown = 4 } in
  Alcotest.check breaker_state "starts closed" Breaker.Closed (Breaker.state b);
  Breaker.failure b ~now:0;
  Breaker.failure b ~now:1;
  Alcotest.check breaker_state "below threshold stays closed" Breaker.Closed
    (Breaker.state b);
  Alcotest.(check bool) "closed allows" true (Breaker.allow b ~now:2);
  Breaker.failure b ~now:2;
  Alcotest.check breaker_state "third consecutive failure trips" Breaker.Open
    (Breaker.state b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "open blocks" false (Breaker.allow b ~now:3)

let test_breaker_success_resets_streak () =
  let b = Breaker.create { Breaker.threshold = 2; cooldown = 4 } in
  Breaker.failure b ~now:0;
  Breaker.success b;
  Breaker.failure b ~now:1;
  Alcotest.check breaker_state "non-consecutive failures don't trip" Breaker.Closed
    (Breaker.state b);
  Breaker.failure b ~now:2;
  Alcotest.check breaker_state "a consecutive pair trips" Breaker.Open
    (Breaker.state b)

let test_breaker_cooldown_and_probe () =
  let b = Breaker.create { Breaker.threshold = 1; cooldown = 5 } in
  Breaker.failure b ~now:10;
  Alcotest.(check bool) "blocked during cooldown" false (Breaker.allow b ~now:14);
  Alcotest.(check bool) "cooldown elapsed: probe allowed" true
    (Breaker.allow b ~now:15);
  Alcotest.check breaker_state "half-open while probing" Breaker.Half_open
    (Breaker.state b);
  Breaker.failure b ~now:15;
  Alcotest.check breaker_state "failed probe reopens" Breaker.Open (Breaker.state b);
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  Alcotest.(check bool) "blocked again" false (Breaker.allow b ~now:16);
  Alcotest.(check bool) "second probe after cooldown" true (Breaker.allow b ~now:20);
  Breaker.success b;
  Alcotest.check breaker_state "probe success closes" Breaker.Closed
    (Breaker.state b);
  (* a late commit against an already-open breaker changes nothing *)
  let c = Breaker.create { Breaker.threshold = 1; cooldown = 100 } in
  Breaker.failure c ~now:0;
  Breaker.failure c ~now:1;
  Alcotest.(check int) "late failure while open is ignored" 1 (Breaker.trips c);
  Alcotest.check breaker_state "still open" Breaker.Open (Breaker.state c)

let test_breaker_rejects_bad_settings () =
  (match Breaker.create { Breaker.threshold = 0; cooldown = 4 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero threshold accepted");
  match Breaker.create { Breaker.threshold = 1; cooldown = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero cooldown accepted"

(* ---- Fallback fault containment (FK re-verification, crash isolation) ---- *)

let test_fallback_demotes_poisoned_theta () =
  (* the solver converges honestly, then the result buffer is scribbled
     with NaN: FK re-verification must demote the claim to Diverged *)
  let p = (random_problems ~seed:31 1).(0) in
  let fault =
    Fault.arm [ { Fault.site = "solver-nan"; trigger = Fault.Always; arg = 0. } ]
  in
  let o = Fallback.run ~fault ~chain:[ Fallback.Quick_ik ] ~config:(budget 2_000) p in
  Alcotest.(check bool) "demoted to Diverged" true
    (o.Fallback.result.Ik.status = Ik.Diverged);
  Alcotest.(check bool) "trail records the malfunction" true
    (o.Fallback.trail = [ (Fallback.Quick_ik, Ik.Diverged) ])

let test_fallback_demotes_lying_solver () =
  (* a tier that forges Converged/error=0 is caught by the honest FK
     check and demoted to Stalled carrying the true error *)
  let p = (random_problems ~seed:32 1).(0) in
  let fault =
    Fault.arm [ { Fault.site = "solver-lie"; trigger = Fault.Always; arg = 0. } ]
  in
  let o = Fallback.run ~fault ~chain:[ Fallback.Jt_serial ] ~config:(budget 1) p in
  let r = o.Fallback.result in
  Alcotest.(check bool) "forged convergence demoted" true (r.Ik.status = Ik.Stalled);
  Alcotest.(check (float 1e-12))
    "error field is the true FK error"
    (Ik.error_of p.Ik.chain p.Ik.target r.Ik.theta)
    r.Ik.error;
  Alcotest.(check bool) "true error above accuracy" true
    (r.Ik.error > Ik.default_config.Ik.accuracy)

let test_fallback_contains_crash () =
  (* every tier raises; the chain must still answer with a finite,
     honestly-scored stand-in instead of propagating the exception *)
  let p = (random_problems ~seed:33 1).(0) in
  let fault =
    Fault.arm [ { Fault.site = "solver-raise"; trigger = Fault.Always; arg = 0. } ]
  in
  let o =
    Fallback.run ~fault
      ~chain:[ Fallback.Quick_ik; Fallback.Dls ]
      ~config:(budget 200) p
  in
  Alcotest.(check int) "both tiers attempted" 2 o.Fallback.attempts;
  Alcotest.(check bool) "both recorded as Diverged" true
    (o.Fallback.trail
    = [ (Fallback.Quick_ik, Ik.Diverged); (Fallback.Dls, Ik.Diverged) ]);
  let r = o.Fallback.result in
  Alcotest.(check bool) "theta finite" true
    (Array.for_all Float.is_finite r.Ik.theta);
  Alcotest.(check bool) "error honestly scored" true
    (Float.is_finite r.Ik.error && r.Ik.error >= 0.)

(* ---- Service resilience (breaker skips, perturbed-seed retries) ---- *)

let test_service_breaker_skips_failing_tier () =
  (* First 1 per request fork poisons whichever tier runs first: the
     primary accumulates Diverged commits until its breaker opens, after
     which requests skip straight to the secondary *)
  let fault =
    Fault.arm ~seed:5
      [ { Fault.site = "solver-nan"; trigger = Fault.First 1; arg = 0. } ]
  in
  let config =
    {
      (service_config ~chunk:1 ()) with
      Service.fault;
      breaker = Some { Breaker.threshold = 2; cooldown = 50 };
    }
  in
  let s = Service.create ~config () in
  let replies = Service.solve_batch s (random_problems ~seed:41 8) in
  Array.iter
    (function
      | Service.Solved _ -> ()
      | _ -> Alcotest.fail "breaker path must still answer every request")
    replies;
  let skipped =
    Array.exists
      (function Service.Solved { breaker_skips; _ } -> breaker_skips > 0 | _ -> false)
      replies
  in
  Alcotest.(check bool) "some request skipped the open tier" true skipped;
  let m = Service.metrics s in
  Alcotest.(check bool) "skips counted" true (m.Metrics.breaker_skips > 0);
  Alcotest.(check bool) "divergences counted" true (m.Metrics.diverged > 0);
  (match List.assoc_opt Fallback.Quick_ik (Service.breaker_states s) with
  | Some Breaker.Open -> ()
  | Some _ -> Alcotest.fail "primary breaker should be open"
  | None -> Alcotest.fail "breaker_states missing the primary");
  (* converged replies were produced by the healthy secondary *)
  Array.iter
    (function
      | Service.Solved { result; solver; _ }
        when result.Ik.status = Ik.Converged ->
        Alcotest.(check bool) "secondary produced it" true (solver = Fallback.Dls)
      | _ -> ())
    replies

let test_service_retry_rescues_failed_chain () =
  (* a single-tier chain whose first attempt is always poisoned: only
     the perturbed-seed retry pass can (and does) rescue the request *)
  let fault =
    Fault.arm ~seed:9
      [ { Fault.site = "solver-nan"; trigger = Fault.First 1; arg = 0. } ]
  in
  let config =
    {
      (service_config ~solvers:[ Fallback.Quick_ik ] ()) with
      Service.fault;
      retries = 2;
    }
  in
  let s = Service.create ~config () in
  let n = 6 in
  let replies = Service.solve_batch s (random_problems ~seed:43 n) in
  Array.iter
    (function
      | Service.Solved { result; retries; retry_converged; trail; _ } ->
        Alcotest.(check bool) "rescued" true (result.Ik.status = Ik.Converged);
        Alcotest.(check bool) "a retry ran" true (retries >= 1);
        Alcotest.(check bool) "flagged as retry-rescued" true retry_converged;
        (match trail with
        | (Fallback.Quick_ik, Ik.Diverged) :: rest ->
          Alcotest.(check bool) "a later pass converged" true
            (List.exists (fun (_, st) -> st = Ik.Converged) rest)
        | _ -> Alcotest.fail "expected the poisoned first attempt in the trail")
      | _ -> Alcotest.fail "expected Solved")
    replies;
  let m = Service.metrics s in
  Alcotest.(check int) "all converged" n m.Metrics.converged;
  Alcotest.(check bool) "retries counted" true (m.Metrics.retries >= n);
  Alcotest.(check int) "rescues counted" n m.Metrics.retry_converged

let () =
  Alcotest.run "dadu_service"
    [
      ( "validate",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "dof mismatch" `Quick test_validate_dof_mismatch;
          Alcotest.test_case "nan target" `Quick test_validate_nan_target;
          Alcotest.test_case "nan theta0" `Quick test_validate_nan_theta0;
        ] );
      ( "seed-cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "dof keyed" `Quick test_cache_dof_keyed;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "cell replacement" `Quick test_cache_replaces_cell;
          Alcotest.test_case "bad inputs" `Quick test_cache_rejects_bad_inputs;
          qcheck test_cache_seeds_always_valid;
          Alcotest.test_case "chain-identity keying" `Quick
            test_cache_chain_keyed;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "positional map" `Quick test_scheduler_map_positional;
          Alcotest.test_case "exception capture" `Quick test_scheduler_captures_exceptions;
          Alcotest.test_case "chunk phase order" `Quick test_scheduler_chunk_phases;
          Alcotest.test_case "deadline expiry (fake clock)" `Quick
            test_scheduler_deadline_expiry;
          Alcotest.test_case "no deadlines ignore the clock" `Quick
            test_scheduler_no_deadline_ignores_clock;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "first solver wins" `Slow test_fallback_first_solver_wins;
          Alcotest.test_case "chains to next" `Slow test_fallback_chains_to_next;
          Alcotest.test_case "best of non-converged" `Slow
            test_fallback_keeps_best_when_none_converge;
          Alcotest.test_case "empty chain" `Quick test_fallback_empty_chain;
          Alcotest.test_case "chain parsing" `Quick test_fallback_chain_parsing;
          qcheck test_fallback_never_lies;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter sums" `Quick test_metrics_sums;
          Alcotest.test_case "render" `Quick test_metrics_render;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips on threshold" `Quick test_breaker_trips_on_threshold;
          Alcotest.test_case "success resets streak" `Quick
            test_breaker_success_resets_streak;
          Alcotest.test_case "cooldown and half-open probe" `Quick
            test_breaker_cooldown_and_probe;
          Alcotest.test_case "bad settings rejected" `Quick
            test_breaker_rejects_bad_settings;
        ] );
      ( "fault-containment",
        [
          Alcotest.test_case "poisoned theta demoted" `Slow
            test_fallback_demotes_poisoned_theta;
          Alcotest.test_case "lying solver demoted" `Quick
            test_fallback_demotes_lying_solver;
          Alcotest.test_case "crash contained" `Quick test_fallback_contains_crash;
          Alcotest.test_case "breaker skips failing tier" `Slow
            test_service_breaker_skips_failing_tier;
          Alcotest.test_case "retry rescues failed chain" `Slow
            test_service_retry_rescues_failed_chain;
        ] );
      ( "service",
        [
          Alcotest.test_case "determinism across pool sizes" `Slow
            test_service_determinism_across_pool_sizes;
          Alcotest.test_case "warm-start cache hits" `Slow test_service_warm_start_hits;
          Alcotest.test_case "counter consistency" `Slow test_service_counter_consistency;
          Alcotest.test_case "fallback counted" `Slow test_service_fallback_counted;
          Alcotest.test_case "empty batch" `Quick test_service_empty_batch;
          Alcotest.test_case "invalid config" `Quick test_service_invalid_config;
          qcheck test_service_counters_property;
          Alcotest.test_case "all requests expired" `Slow test_service_all_expired;
          Alcotest.test_case "mixed deadlines" `Slow test_service_mixed_deadlines;
          qcheck test_service_parallel_determinism;
          Alcotest.test_case "trace spans" `Slow test_service_trace_spans;
          Alcotest.test_case "no cross-chain warm start" `Slow
            test_service_no_cross_chain_warm_start;
          Alcotest.test_case "seed-candidates 1 is classic path" `Slow
            test_seed_candidates_one_is_classic_path;
          qcheck test_seeded_determinism;
          Alcotest.test_case "seeded metrics accounting" `Slow
            test_seeded_metrics_accounting;
          qcheck test_snapshot_prepare_determinism;
          Alcotest.test_case "phase breakdown records" `Quick
            test_phase_breakdown_records;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "warm waypoints <= 4 iters at 30 DOF" `Slow
            test_session_warm_iteration_pin;
          Alcotest.test_case "intra-wave ordering (cut + poisoned cache)" `Slow
            test_session_intra_wave_ordering;
          Alcotest.test_case "chain mismatch serves cold" `Slow
            test_session_chain_mismatch_serves_cold;
          qcheck test_session_interleaving_independence;
          qcheck test_session_determinism_modes;
        ] );
      ( "problem-file",
        [
          Alcotest.test_case "parses" `Quick test_problem_file_parses;
          Alcotest.test_case "errors carry line numbers" `Quick test_problem_file_errors;
          Alcotest.test_case "random deterministic" `Quick
            test_problem_file_random_deterministic;
          Alcotest.test_case "deadlines" `Quick test_problem_file_deadlines;
          Alcotest.test_case "deadline errors" `Quick test_problem_file_deadline_errors;
        ] );
    ]
