(* Unit and property tests for Dadu_kinematics: Joint, Dh, Chain, Fk,
   Jacobian, Robots, Target, Traj. *)

open Dadu_linalg
open Dadu_kinematics
module Rng = Dadu_util.Rng

let qcheck = QCheck_alcotest.to_alcotest
let check_float = Alcotest.(check (float 1e-9))
let pi = Float.pi

(* ---- Joint ---- *)

let test_joint_clamp () =
  let j = Joint.revolute ~lower:(-1.) ~upper:1. () in
  check_float "below" (-1.) (Joint.clamp j (-5.));
  check_float "inside" 0.3 (Joint.clamp j 0.3);
  check_float "above" 1. (Joint.clamp j 2.)

let test_joint_inside () =
  let j = Joint.prismatic ~lower:0. ~upper:0.5 () in
  Alcotest.(check bool) "inside" true (Joint.inside j 0.25);
  Alcotest.(check bool) "outside" false (Joint.inside j 0.75)

let test_joint_unbounded () =
  Alcotest.(check bool) "unbounded" true (Joint.unbounded (Joint.revolute ()));
  Alcotest.(check bool) "bounded" false
    (Joint.unbounded (Joint.revolute ~lower:(-1.) ~upper:1. ()))

let test_joint_span () =
  check_float "span" 2. (Joint.span (Joint.revolute ~lower:(-1.) ~upper:1. ()));
  Alcotest.(check bool) "unbounded span" true
    (Joint.span (Joint.revolute ()) = infinity)

let test_joint_bad_limits () =
  Alcotest.check_raises "lower > upper"
    (Invalid_argument "Joint: lower limit exceeds upper limit") (fun () ->
      ignore (Joint.revolute ~lower:1. ~upper:(-1.) ()))

(* ---- Dh ---- *)

let test_dh_identity () =
  let t = Dh.transform (Dh.make ()) Joint.Revolute 0. in
  Alcotest.(check bool) "identity at zero" true (Mat4.approx_equal t (Mat4.identity ()))

let test_dh_revolute_variable () =
  (* revolute joint value rotates about z *)
  let t = Dh.transform (Dh.make ()) Joint.Revolute (pi /. 2.) in
  Alcotest.(check bool) "pure z-rotation" true
    (Mat4.approx_equal ~tol:1e-12 t (Mat4.rot_z (pi /. 2.)))

let test_dh_prismatic_variable () =
  let t = Dh.transform (Dh.make ()) Joint.Prismatic 0.7 in
  Alcotest.(check bool) "pure z-translation" true
    (Mat4.approx_equal ~tol:1e-12 t (Mat4.translation (Vec3.make 0. 0. 0.7)))

let test_dh_link_length () =
  let t = Dh.transform (Dh.make ~a:2. ()) Joint.Revolute 0. in
  Alcotest.(check bool) "x offset" true
    (Vec3.approx_equal (Mat4.position t) (Vec3.make 2. 0. 0.))

let test_dh_transform_into_matches () =
  let dh = Dh.make ~a:0.5 ~alpha:0.3 ~d:0.2 ~theta:0.1 () in
  let dst = Mat4.identity () in
  Dh.transform_into ~dst dh Joint.Revolute 0.8;
  Alcotest.(check bool) "into = pure" true
    (Mat4.approx_equal dst (Dh.transform dh Joint.Revolute 0.8))

let test_dh_rigid =
  QCheck.Test.make ~name:"DH transforms are rigid" ~count:200
    QCheck.(
      quad (float_range (-2.) 2.) (float_range (-3.) 3.) (float_range (-2.) 2.)
        (float_range (-3.) 3.))
    (fun (a, alpha, d, q) ->
      let t = Dh.transform (Dh.make ~a ~alpha ~d ()) Joint.Revolute q in
      Mat4.is_rigid ~tol:1e-9 t)

(* ---- Chain ---- *)

let two_link =
  Chain.make ~name:"two-link"
    [|
      { Chain.name = "j1"; joint = Joint.revolute (); dh = Dh.make ~a:1. () };
      { Chain.name = "j2"; joint = Joint.revolute (); dh = Dh.make ~a:1. () };
    |]

let test_chain_dof () = Alcotest.(check int) "dof" 2 (Chain.dof two_link)

let test_chain_empty () =
  Alcotest.check_raises "empty rejected" (Invalid_argument "Chain.make: no links")
    (fun () -> ignore (Chain.make [||]))

let test_chain_reach () =
  check_float "reach" 2. (Chain.reach two_link);
  let c = Robots.planar ~dof:5 ~reach:3. () in
  Alcotest.(check (float 1e-9)) "planar reach" 3. (Chain.reach c)

let test_chain_clamp_config () =
  let c =
    Chain.make
      [|
        {
          Chain.name = "j";
          joint = Joint.revolute ~lower:(-0.5) ~upper:0.5 ();
          dh = Dh.make ~a:1. ();
        };
      |]
  in
  Alcotest.(check (array (float 1e-12))) "clamped" [| 0.5 |] (Chain.clamp_config c [| 2. |])

let test_chain_check_config () =
  Alcotest.(check bool) "raises on wrong length" true
    (try
       Chain.check_config two_link [| 0. |];
       false
     with Invalid_argument _ -> true)

let test_chain_base_tool_copied () =
  let base = Mat4.translation (Vec3.make 1. 0. 0.) in
  let c =
    Chain.make ~base
      [| { Chain.name = "j"; joint = Joint.revolute (); dh = Dh.make ~a:1. () } |]
  in
  Mat4.set base 0 3 99.;
  Alcotest.(check bool) "base copied at construction" true
    (Vec3.approx_equal (Mat4.position (Chain.base c)) (Vec3.make 1. 0. 0.))

(* ---- Fk ---- *)

let test_fk_two_link_zero () =
  Alcotest.(check bool) "straight" true
    (Vec3.approx_equal ~tol:1e-12 (Fk.position two_link [| 0.; 0. |]) (Vec3.make 2. 0. 0.))

let test_fk_two_link_elbow () =
  (* q1 = 90deg: first link along y; q2 = -90deg: second link back along x *)
  let p = Fk.position two_link [| pi /. 2.; -.pi /. 2. |] in
  Alcotest.(check bool) "elbow" true (Vec3.approx_equal ~tol:1e-12 p (Vec3.make 1. 1. 0.))

let test_fk_planar_angle_sum () =
  (* for a planar chain the end effector is the sum of link vectors at
     cumulative angles *)
  let c = Robots.planar ~dof:4 ~reach:4. () in
  let q = [| 0.3; -0.5; 1.1; 0.2 |] in
  let expected =
    let cum = ref 0. and x = ref 0. and y = ref 0. in
    Array.iter
      (fun qi ->
        cum := !cum +. qi;
        x := !x +. cos !cum;
        y := !y +. sin !cum)
      q;
    Vec3.make !x !y 0.
  in
  Alcotest.(check bool) "angle-sum identity" true
    (Vec3.approx_equal ~tol:1e-9 (Fk.position c q) expected)

let test_fk_frames_shape () =
  let frames = Fk.frames two_link [| 0.1; 0.2 |] in
  Alcotest.(check int) "dof+1 frames" 3 (Array.length frames);
  Alcotest.(check bool) "last = position" true
    (Vec3.approx_equal
       (Mat4.position frames.(2))
       (Fk.position two_link [| 0.1; 0.2 |]))

let test_fk_pose_matches_position () =
  let q = [| 0.4; -0.9 |] in
  Alcotest.(check bool) "pose position" true
    (Vec3.approx_equal (Mat4.position (Fk.pose two_link q)) (Fk.position two_link q))

let test_fk_scratch_equivalence () =
  let scratch = Fk.make_scratch () in
  let q = [| 0.8; 0.3 |] in
  Alcotest.(check bool) "scratch = default" true
    (Vec3.approx_equal (Fk.position ~scratch two_link q) (Fk.position two_link q))

let test_fk_tool () =
  let tool = Mat4.translation (Vec3.make 0. 0. 0.5) in
  let c =
    Chain.make ~tool
      [| { Chain.name = "j"; joint = Joint.revolute (); dh = Dh.make ~a:1. () } |]
  in
  Alcotest.(check bool) "tool offset applied" true
    (Vec3.approx_equal ~tol:1e-12 (Fk.position c [| 0. |]) (Vec3.make 1. 0. 0.5))

let test_fk_prismatic () =
  let c = Robots.scara () in
  let q0 = [| 0.; 0.; 0.; 0. |] in
  let q1 = [| 0.; 0.; 0.1; 0. |] in
  let p0 = Fk.position c q0 and p1 = Fk.position c q1 in
  Alcotest.(check (float 1e-9)) "quill moves 0.1 along its axis" 0.1 (Vec3.dist p0 p1)

let seeded_config rng chain = Target.random_config rng chain

let test_fk_within_reach =
  QCheck.Test.make ~name:"FK position within conservative reach" ~count:200
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let dof = 2 + Rng.int rng 10 in
      let chain = Robots.random rng ~dof ~reach:2.0 () in
      let q = seeded_config rng chain in
      Vec3.norm (Fk.position chain q) <= Chain.reach chain +. 1e-9)

let test_fk_pose_rigid =
  QCheck.Test.make ~name:"FK pose is a rigid transform" ~count:200
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let dof = 2 + Rng.int rng 10 in
      let chain = Robots.random rng ~dof ~reach:2.0 () in
      let q = seeded_config rng chain in
      Mat4.is_rigid ~tol:1e-8 (Fk.pose chain q))

let test_fk_flops_positive () =
  Alcotest.(check bool) "monotone" true
    (Fk.flops_per_position 100 > Fk.flops_per_position 12
    && Fk.flops_per_position 1 > 0)

(* ---- Jacobian ---- *)

let test_jacobian_matches_numerical =
  QCheck.Test.make ~name:"analytic Jacobian = finite differences" ~count:100
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let dof = 2 + Rng.int rng 12 in
      let chain = Robots.random rng ~dof ~reach:2.0 () in
      let q = seeded_config rng chain in
      let analytic = Jacobian.position_jacobian chain q in
      let numerical = Jacobian.numerical_position_jacobian chain q in
      Mat.approx_equal ~tol:1e-5 analytic numerical)

(* Independent oracle: central finite differences of [Fk.position] itself,
   computed here rather than via [Jacobian.numerical_position_jacobian], so a
   shared bug in the library's differencing code cannot mask an error. *)
let central_difference_jacobian chain q =
  let dof = Chain.dof chain in
  let h = 1e-6 in
  Mat.init 3 dof (fun row col ->
      let shifted delta =
        let q' = Array.copy q in
        q'.(col) <- q'.(col) +. delta;
        Fk.position chain q'
      in
      let plus = shifted h and minus = shifted (-.h) in
      let d =
        match row with
        | 0 -> plus.Vec3.x -. minus.Vec3.x
        | 1 -> plus.Vec3.y -. minus.Vec3.y
        | _ -> plus.Vec3.z -. minus.Vec3.z
      in
      d /. (2. *. h))

let test_jacobian_matches_central_fd =
  QCheck.Test.make
    ~name:"analytic Jacobian columns = central differences of FK (3-40 DOF)"
    ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let dof = 3 + Rng.int rng 38 in
      let chain = Robots.random rng ~dof ~reach:(0.2 *. float_of_int dof) () in
      let q = seeded_config rng chain in
      let analytic = Jacobian.position_jacobian chain q in
      let oracle = central_difference_jacobian chain q in
      (* column-by-column so a failure names the offending joint *)
      let ok = ref true in
      for col = 0 to dof - 1 do
        let err = ref 0. in
        for row = 0 to 2 do
          err :=
            Float.max !err
              (Float.abs (Mat.get analytic row col -. Mat.get oracle row col))
        done;
        if !err > 1e-4 *. Float.max 1. (Chain.reach chain) then ok := false
      done;
      !ok)

let test_jacobian_matches_numerical_prismatic () =
  let chain = Robots.scara () in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let q = seeded_config rng chain in
    let analytic = Jacobian.position_jacobian chain q in
    let numerical = Jacobian.numerical_position_jacobian chain q in
    Alcotest.(check bool) "scara jacobian" true
      (Mat.approx_equal ~tol:1e-5 analytic numerical)
  done

let test_jacobian_planar_z_row_zero () =
  let chain = Robots.planar ~dof:6 ~reach:3. () in
  let rng = Rng.create 4 in
  let q = seeded_config rng chain in
  let j = Jacobian.position_jacobian chain q in
  for col = 0 to 5 do
    check_float "z row" 0. (Mat.get j 2 col)
  done

let test_full_jacobian_top_matches () =
  let chain = Robots.arm_7dof () in
  let rng = Rng.create 5 in
  let q = seeded_config rng chain in
  let jp = Jacobian.position_jacobian chain q in
  let jf = Jacobian.full_jacobian chain q in
  let ok = ref true in
  for i = 0 to 2 do
    for jcol = 0 to Chain.dof chain - 1 do
      if Float.abs (Mat.get jp i jcol -. Mat.get jf i jcol) > 1e-12 then ok := false
    done
  done;
  Alcotest.(check bool) "rows 0-2 equal" true !ok

let test_full_jacobian_angular_revolute () =
  let chain = two_link in
  let q = [| 0.2; 0.4 |] in
  let jf = Jacobian.full_jacobian chain q in
  let frames = Fk.frames chain q in
  for col = 0 to 1 do
    let z = Mat4.z_axis frames.(col) in
    Alcotest.(check bool) "angular = joint axis" true
      (Vec3.approx_equal ~tol:1e-12 z
         (Vec3.make (Mat.get jf 3 col) (Mat.get jf 4 col) (Mat.get jf 5 col)))
  done

let test_jacobian_of_frames_matches () =
  let chain = Robots.eval_chain ~dof:12 in
  let rng = Rng.create 6 in
  let q = seeded_config rng chain in
  let frames = Fk.frames chain q in
  Alcotest.(check bool) "frames variant equal" true
    (Mat.approx_equal
       (Jacobian.position_jacobian_of_frames chain frames)
       (Jacobian.position_jacobian chain q))

let test_jacobian_frame_count () =
  Alcotest.(check bool) "wrong frame count rejected" true
    (try
       ignore (Jacobian.position_jacobian_of_frames two_link [| Mat4.identity () |]);
       false
     with Invalid_argument _ -> true)

(* ---- Robots ---- *)

let test_robots_dofs () =
  Alcotest.(check (list int)) "eval dofs" [ 12; 25; 50; 75; 100 ] Robots.eval_dofs;
  Alcotest.(check int) "6dof" 6 (Chain.dof (Robots.arm_6dof ()));
  Alcotest.(check int) "7dof" 7 (Chain.dof (Robots.arm_7dof ()));
  Alcotest.(check int) "scara" 4 (Chain.dof (Robots.scara ()));
  Alcotest.(check int) "snake" 30 (Chain.dof (Robots.snake ~dof:30));
  Alcotest.(check int) "eval chain" 25 (Chain.dof (Robots.eval_chain ~dof:25))

let test_robots_eval_chain_link_length () =
  (* eval chains use 1 m links *)
  let c = Robots.eval_chain ~dof:50 in
  Alcotest.(check (float 1e-9)) "reach = dof meters" 50. (Chain.reach c)

let test_robots_scara_prismatic () =
  let c = Robots.scara () in
  let kinds = Array.map (fun l -> l.Chain.joint.Joint.kind) (Chain.links c) in
  Alcotest.(check bool) "has prismatic quill" true (Array.mem Joint.Prismatic kinds)

let test_robots_snake_limits () =
  let c = Robots.snake ~dof:10 in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "bounded" false (Joint.unbounded l.Chain.joint))
    (Chain.links c)

let test_robots_random_deterministic () =
  let mk seed =
    let rng = Rng.create seed in
    Robots.random rng ~dof:8 ~reach:2. ()
  in
  let a = mk 5 and b = mk 5 in
  let q = Array.make 8 0.4 in
  Alcotest.(check bool) "same geometry" true
    (Vec3.approx_equal (Fk.position a q) (Fk.position b q))

let test_robots_invalid_dof () =
  Alcotest.(check bool) "dof 0 rejected" true
    (try
       ignore (Robots.spatial ~dof:0 ~reach:1. ());
       false
     with Invalid_argument _ -> true)

(* ---- Target ---- *)

let test_target_reachable =
  QCheck.Test.make ~name:"targets are within reach" ~count:200
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let chain = Robots.eval_chain ~dof:12 in
      let t = Target.reachable rng chain in
      Vec3.norm t <= Chain.reach chain +. 1e-9)

let test_target_config_within_limits () =
  let chain = Robots.snake ~dof:12 in
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    let q = Target.random_config rng chain in
    Alcotest.(check bool) "inside limits" true (Chain.config_inside chain q)
  done

let test_target_batch_size () =
  let rng = Rng.create 18 in
  Alcotest.(check int) "batch" 7
    (Array.length (Target.batch rng (Robots.eval_chain ~dof:12) 7))

let test_target_unreachable_outside () =
  let rng = Rng.create 19 in
  let chain = Robots.arm_6dof () in
  for _ = 1 to 20 do
    let t = Target.unreachable rng chain in
    Alcotest.(check bool) "outside workspace" true (Vec3.norm t > Chain.reach chain)
  done

let test_workspace_ellipsoid () =
  let chain = Robots.eval_chain ~dof:8 in
  let rng = Rng.create 75 in
  let q = Target.random_config rng chain in
  let axes = Workspace.ellipsoid chain q in
  Alcotest.(check int) "three axes" 3 (List.length axes);
  (* axes are orthonormal directions with descending lengths equal to the
     Jacobian's singular values *)
  let dirs = List.map fst axes and lens = List.map snd axes in
  List.iteri
    (fun i d ->
      Alcotest.(check (float 1e-7)) "unit direction" 1. (Vec3.norm d);
      List.iteri
        (fun j d' ->
          if i < j then
            Alcotest.(check (float 1e-6)) "orthogonal" 0. (Vec3.dot d d'))
        dirs)
    dirs;
  let svd = Svd.decompose (Jacobian.position_jacobian chain q) in
  List.iteri
    (fun k len ->
      Alcotest.(check bool) "length = singular value" true
        (Float.abs (len -. svd.Svd.sigma.(k)) < 1e-6 *. Float.max 1. len))
    lens;
  (match lens with
  | [ a; b; c ] ->
    Alcotest.(check bool) "descending" true (a >= b && b >= c)
  | _ -> Alcotest.fail "expected 3")

(* ---- Chain_format ---- *)

let demo_description = String.concat "\n" [
  "# demo";
  "chain demo-arm";
  "base translate 0 0 0.2";
  "joint shoulder revolute a=0.5 alpha=90deg limits=-170deg,170deg";
  "joint elbow revolute a=0.4";
  "joint quill prismatic limits=0,0.18";
  "tool translate 0 0 0.05";
]

let test_format_parse () =
  match Chain_format.parse demo_description with
  | Error msg -> Alcotest.fail msg
  | Ok chain ->
    Alcotest.(check string) "name" "demo-arm" (Chain.name chain);
    Alcotest.(check int) "dof" 3 (Chain.dof chain);
    let shoulder = Chain.link chain 0 in
    Alcotest.(check (float 1e-12)) "a" 0.5 shoulder.Chain.dh.Dh.a;
    Alcotest.(check (float 1e-9)) "alpha in radians" (pi /. 2.) shoulder.Chain.dh.Dh.alpha;
    Alcotest.(check (float 1e-9)) "limits in radians" (170. *. pi /. 180.)
      shoulder.Chain.joint.Joint.upper;
    Alcotest.(check bool) "quill prismatic" true
      ((Chain.link chain 2).Chain.joint.Joint.kind = Joint.Prismatic);
    Alcotest.(check bool) "base applied" true
      (Vec3.approx_equal ~tol:1e-12
         (Mat4.position (Chain.base chain))
         (Vec3.make 0. 0. 0.2))

let test_format_roundtrip () =
  List.iter
    (fun chain ->
      match Chain_format.parse (Chain_format.to_string chain) with
      | Error msg -> Alcotest.fail (Chain.name chain ^ ": " ^ msg)
      | Ok chain' ->
        Alcotest.(check int) "dof preserved" (Chain.dof chain) (Chain.dof chain');
        let rng = Rng.create 5 in
        for _ = 1 to 10 do
          let q = Target.random_config rng chain in
          Alcotest.(check bool) "identical FK" true
            (Vec3.approx_equal ~tol:1e-12 (Fk.position chain q) (Fk.position chain' q))
        done)
    [
      Robots.eval_chain ~dof:12;
      Robots.snake ~dof:10;
      Robots.scara ();
      Robots.arm_7dof ();
    ]

let test_format_errors () =
  let expect_error fragment description =
    match Chain_format.parse description with
    | Ok _ -> Alcotest.fail ("expected failure: " ^ fragment)
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment msg)
        true
        (Astring.String.is_infix ~affix:fragment msg)
  in
  expect_error "no joints" "chain empty";
  expect_error "line 2" "chain x\njoint j1 floppy a=1";
  expect_error "unknown directive" "wat 3";
  expect_error "expected a number" "joint j revolute a=abc";
  expect_error "limits out of order" "joint j revolute limits=2,1";
  expect_error "unknown joint parameter" "joint j revolute blah=3"

let test_format_comments_and_blanks () =
  let src = "\n# only a comment\n\njoint j revolute a=1 # trailing comment\n\n" in
  match Chain_format.parse src with
  | Error msg -> Alcotest.fail msg
  | Ok chain -> Alcotest.(check int) "one joint" 1 (Chain.dof chain)

let test_format_parse_file () =
  let path = Filename.temp_file "dadu" ".robot" in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc demo_description);
  let result = Chain_format.parse_file path in
  Sys.remove path;
  match result with
  | Ok chain -> Alcotest.(check int) "dof" 3 (Chain.dof chain)
  | Error msg -> Alcotest.fail msg

let test_format_missing_file () =
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Chain_format.parse_file "/nonexistent/robot.txt"))

(* ---- Workspace ---- *)

let test_workspace_manipulability_singular () =
  (* straightened planar arm: all joint axes aligned, J rank-deficient in
     the plane -> manipulability 0 *)
  let chain = Robots.planar ~dof:4 ~reach:4. () in
  Alcotest.(check (float 1e-9)) "singular at zero pose" 0.
    (Workspace.manipulability chain (Array.make 4 0.))

let test_workspace_manipulability_positive () =
  let chain = Robots.eval_chain ~dof:8 in
  let rng = Rng.create 71 in
  let q = Target.random_config rng chain in
  Alcotest.(check bool) "positive away from singularity" true
    (Workspace.manipulability chain q > 0.)

let test_workspace_condition_ge_one () =
  let chain = Robots.eval_chain ~dof:8 in
  let rng = Rng.create 72 in
  for _ = 1 to 20 do
    let q = Target.random_config rng chain in
    Alcotest.(check bool) "cond >= 1" true (Workspace.condition_number chain q >= 1.)
  done

let test_workspace_sample () =
  let chain = Robots.arm_6dof () in
  let rng = Rng.create 73 in
  let s = Workspace.sample ~samples:200 rng chain in
  Alcotest.(check int) "samples" 200 s.Workspace.samples;
  Alcotest.(check bool) "reach max within conservative bound" true
    (s.Workspace.reach_max <= Chain.reach chain +. 1e-9);
  Alcotest.(check bool) "median <= max" true
    (s.Workspace.reach_p50 <= s.Workspace.reach_max);
  Alcotest.(check bool) "bbox ordered" true
    (s.Workspace.extent_min.Vec3.x <= s.Workspace.extent_max.Vec3.x
    && s.Workspace.extent_min.Vec3.y <= s.Workspace.extent_max.Vec3.y
    && s.Workspace.extent_min.Vec3.z <= s.Workspace.extent_max.Vec3.z);
  Alcotest.(check bool) "singular fraction in [0,1]" true
    (s.Workspace.singular_fraction >= 0. && s.Workspace.singular_fraction <= 1.)

let test_workspace_low_twist_worse_conditioned () =
  (* the whole point of the 10-degree eval geometry: worse conditioning
     than the 90-degree spatial chain *)
  let rng1 = Rng.create 74 and rng2 = Rng.create 74 in
  let low = Workspace.sample ~samples:200 rng1 (Robots.eval_chain ~dof:25) in
  let high =
    Workspace.sample ~samples:200 rng2 (Robots.spatial ~dof:25 ~reach:25. ())
  in
  Alcotest.(check bool) "median condition number higher on eval chain" true
    (low.Workspace.condition.Dadu_util.Stats.p50
    > high.Workspace.condition.Dadu_util.Stats.p50)

(* ---- Obstacles ---- *)

let test_obstacle_point_segment () =
  let a = Vec3.zero and b = Vec3.make 2. 0. 0. in
  check_float "above middle" 1. (Obstacles.point_segment_distance (Vec3.make 1. 1. 0.) a b);
  check_float "beyond end" 1. (Obstacles.point_segment_distance (Vec3.make 3. 0. 0.) a b);
  check_float "before start" 2. (Obstacles.point_segment_distance (Vec3.make (-2.) 0. 0.) a b);
  check_float "degenerate segment" 5. (Obstacles.point_segment_distance (Vec3.make 0. 5. 0.) a a)

let test_obstacle_point_segment_symmetry =
  QCheck.Test.make ~name:"segment distance symmetric in endpoints" ~count:200
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let v () = Vec3.make (Rng.uniform rng (-2.) 2.) (Rng.uniform rng (-2.) 2.) (Rng.uniform rng (-2.) 2.) in
      let p = v () and a = v () and b = v () in
      Float.abs
        (Obstacles.point_segment_distance p a b
        -. Obstacles.point_segment_distance p b a)
      < 1e-9)

let test_obstacle_segment_clearance () =
  let s = Obstacles.sphere ~center:(Vec3.make 0. 1. 0.) ~radius:0.5 in
  check_float "clear" 0.5
    (Obstacles.segment_clearance Vec3.zero (Vec3.make 2. 0. 0.) s);
  Alcotest.(check bool) "penetrating is negative" true
    (Obstacles.segment_clearance Vec3.zero (Vec3.make 0. 2. 0.) s < 0.)

let test_obstacle_chain_clearance () =
  (* straight planar chain along x; sphere above it *)
  let chain = Robots.planar ~dof:4 ~reach:2. () in
  let q = Array.make 4 0. in
  let scene = [ Obstacles.sphere ~center:(Vec3.make 1. 0.8 0.) ~radius:0.3 ] in
  check_float "clearance" 0.5 (Obstacles.clearance scene chain q);
  Alcotest.(check bool) "not penetrating" false (Obstacles.penetrates scene chain q);
  let through = [ Obstacles.sphere ~center:(Vec3.make 1. 0. 0.) ~radius:0.2 ] in
  Alcotest.(check bool) "chain through sphere penetrates" true
    (Obstacles.penetrates through chain q)

let test_obstacle_empty_scene () =
  let chain = Robots.planar ~dof:3 ~reach:1.5 () in
  Alcotest.(check bool) "empty scene is infinitely clear" true
    (Obstacles.clearance [] chain (Array.make 3 0.) = infinity)

let test_obstacle_invalid_radius () =
  Alcotest.(check bool) "radius 0 rejected" true
    (try
       ignore (Obstacles.sphere ~center:Vec3.zero ~radius:0.);
       false
     with Invalid_argument _ -> true)

let test_obstacle_gradient_pushes_away () =
  (* clearance along the gradient direction must increase *)
  let chain = Robots.snake ~dof:12 in
  let rng = Rng.create 31 in
  let q = Target.random_config rng chain in
  let mid = Fk.position chain (Array.map (fun x -> x *. 0.5) q) in
  let scene = [ Obstacles.sphere ~center:mid ~radius:0.05 ] in
  let g = Obstacles.clearance_gradient scene chain q in
  if Vec.norm g > 1e-9 then begin
    let step = Vec.axpy 1e-3 (Vec.scale (1. /. Vec.norm g) g) q in
    Alcotest.(check bool) "clearance increases along gradient" true
      (Obstacles.clearance scene chain step > Obstacles.clearance scene chain q)
  end

let test_obstacle_objective_inactive_when_clear () =
  let chain = Robots.planar ~dof:3 ~reach:1.5 () in
  let q = Array.make 3 0. in
  let scene = [ Obstacles.sphere ~center:(Vec3.make 0. 5. 0.) ~radius:0.5 ] in
  Alcotest.(check (float 0.)) "zero objective far away" 0.
    (Dadu_linalg.Vec.norm (Obstacles.avoidance_objective scene chain q))

let test_obstacle_avoidance_via_nullspace () =
  (* hold the tip on target while the body gains clearance *)
  let chain = Robots.snake ~dof:16 in
  let rng = Rng.create 32 in
  let q_goal = Target.random_config rng chain in
  let target = Fk.position chain q_goal in
  (* obstacle near the middle of the current body *)
  let frames = Fk.frames chain q_goal in
  let near = Dadu_linalg.Mat4.position frames.(8) in
  let scene =
    [ Obstacles.sphere ~center:(Vec3.add near (Vec3.make 0.02 0.02 0.)) ~radius:0.04 ]
  in
  let before = Obstacles.clearance scene chain q_goal in
  let improved =
    Dadu_core.Nullspace.optimize ~iterations:200 ~gain:0.05
      ~objective:(Dadu_core.Nullspace.Custom (Obstacles.avoidance_objective scene chain))
      chain ~target ~theta:q_goal
  in
  let after = Obstacles.clearance scene chain improved in
  Alcotest.(check bool)
    (Printf.sprintf "clearance improved (%.4f -> %.4f)" before after)
    true (after > before);
  Alcotest.(check bool) "task held" true
    (Vec3.dist target (Fk.position chain improved) < 1.5e-2)

(* ---- Rrt ---- *)

(* a 4-DOF planar arm with a wall of spheres between two postures *)
let rrt_chain = Robots.planar ~dof:4 ~reach:2. ()

let rrt_wall =
  (* spheres blocking the straight-line joint-space interpolation between
     the arm-up and arm-down postures *)
  [ Obstacles.sphere ~center:(Vec3.make 1.4 0. 0.) ~radius:0.35 ]

let test_rrt_plans_around_wall () =
  let start = [| 0.9; 0.3; 0.2; 0.1 |] in
  let goal = [| -0.9; -0.3; -0.2; -0.1 |] in
  (* sanity: endpoints free, straight line blocked *)
  Alcotest.(check bool) "start free" true
    (Obstacles.clearance rrt_wall rrt_chain start > 0.);
  Alcotest.(check bool) "goal free" true
    (Obstacles.clearance rrt_wall rrt_chain goal > 0.);
  Alcotest.(check bool) "straight line blocked" false
    (Rrt.path_collision_free rrt_wall rrt_chain [ start; goal ]);
  let rng = Rng.create 61 in
  let result = Rrt.plan rng ~scene:rrt_wall ~chain:rrt_chain ~start ~goal in
  Alcotest.(check bool) "found a path" true (result.Rrt.path <> []);
  (match result.Rrt.path with
  | first :: _ ->
    Alcotest.(check bool) "starts at start" true (Vec.approx_equal first start);
    let last = List.nth result.Rrt.path (List.length result.Rrt.path - 1) in
    Alcotest.(check bool) "ends at goal" true (Vec.approx_equal last goal)
  | [] -> ());
  Alcotest.(check bool) "path collision-free" true
    (Rrt.path_collision_free rrt_wall rrt_chain result.Rrt.path);
  Alcotest.(check bool) "accounting positive" true
    (result.Rrt.nodes_expanded > 0 && result.Rrt.collision_checks > 0)

let test_rrt_free_space_direct () =
  (* no obstacles: planning still works and yields a valid path *)
  let start = Array.make 4 0.2 and goal = Array.make 4 (-0.4) in
  let rng = Rng.create 62 in
  let result = Rrt.plan rng ~scene:[] ~chain:rrt_chain ~start ~goal in
  Alcotest.(check bool) "path found" true (result.Rrt.path <> [])

let test_rrt_rejects_colliding_endpoints () =
  let inside =
    (* straight arm passes through the wall sphere *)
    [| 0.; 0.; 0.; 0. |]
  in
  Alcotest.(check bool) "start collides" true
    (Obstacles.penetrates rrt_wall rrt_chain inside);
  let rng = Rng.create 63 in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Rrt.plan rng ~scene:rrt_wall ~chain:rrt_chain ~start:inside
            ~goal:(Array.make 4 0.9));
       false
     with Invalid_argument _ -> true)

let test_rrt_deterministic () =
  let start = [| 0.9; 0.3; 0.2; 0.1 |] and goal = [| -0.9; -0.3; -0.2; -0.1 |] in
  let run seed =
    (Rrt.plan (Rng.create seed) ~scene:rrt_wall ~chain:rrt_chain ~start ~goal).Rrt.path
  in
  Alcotest.(check bool) "same seed, same path" true (run 64 = run 64)

let test_rrt_shortcut_improves () =
  let start = [| 0.9; 0.3; 0.2; 0.1 |] and goal = [| -0.9; -0.3; -0.2; -0.1 |] in
  let rng = Rng.create 65 in
  let result = Rrt.plan rng ~scene:rrt_wall ~chain:rrt_chain ~start ~goal in
  let short = Rrt.shortcut rng rrt_wall rrt_chain result.Rrt.path in
  Alcotest.(check bool) "no longer" true
    (Rrt.path_length short <= Rrt.path_length result.Rrt.path +. 1e-9);
  Alcotest.(check bool) "still collision-free" true
    (Rrt.path_collision_free rrt_wall rrt_chain short);
  (match (short, result.Rrt.path) with
  | a :: _, b :: _ -> Alcotest.(check bool) "same start" true (a = b)
  | _ -> Alcotest.fail "empty");
  let last l = List.nth l (List.length l - 1) in
  Alcotest.(check bool) "same goal" true (last short = last result.Rrt.path)

let test_rrt_path_length () =
  Alcotest.(check (float 1e-12)) "two hops" 3.
    (Rrt.path_length [ [| 0. |]; [| 1. |]; [| 3. |] ]);
  Alcotest.(check (float 1e-12)) "singleton" 0. (Rrt.path_length [ [| 5. |] ])

(* ---- Spline ---- *)

let test_spline_quintic_boundaries () =
  let q0 = [| 0.; 1.; -0.5 |] and q1 = [| 1.; -1.; 0.5 |] in
  let traj = Spline.quintic ~q0 ~q1 ~duration:2. in
  let s0 = traj.Spline.at 0. and s1 = traj.Spline.at 2. in
  Alcotest.(check bool) "starts at q0" true (Vec.approx_equal ~tol:1e-12 s0.Spline.q q0);
  Alcotest.(check bool) "ends at q1" true (Vec.approx_equal ~tol:1e-12 s1.Spline.q q1);
  Alcotest.(check (float 1e-9)) "rest start" 0. (Vec.max_abs s0.Spline.qd);
  Alcotest.(check (float 1e-9)) "rest end" 0. (Vec.max_abs s1.Spline.qd);
  Alcotest.(check (float 1e-9)) "zero accel start" 0. (Vec.max_abs s0.Spline.qdd);
  Alcotest.(check (float 1e-9)) "zero accel end" 0. (Vec.max_abs s1.Spline.qdd)

let test_spline_quintic_clamps () =
  let traj = Spline.quintic ~q0:[| 0. |] ~q1:[| 1. |] ~duration:1. in
  Alcotest.(check (float 1e-12)) "before start" 0. (traj.Spline.at (-5.)).Spline.q.(0);
  Alcotest.(check (float 1e-12)) "after end" 1. (traj.Spline.at 9.).Spline.q.(0)

let test_spline_quintic_velocity_consistent =
  QCheck.Test.make ~name:"quintic velocity = dq/dt (finite diff)" ~count:100
    QCheck.(pair (float_range 0.1 0.9) (float_range 0.5 4.)) (fun (u, duration) ->
      let traj = Spline.quintic ~q0:[| 0.; 2. |] ~q1:[| 1.; -1. |] ~duration in
      let t = u *. duration in
      let eps = 1e-6 in
      let s = traj.Spline.at t in
      let qp = (traj.Spline.at (t +. eps)).Spline.q in
      let qm = (traj.Spline.at (t -. eps)).Spline.q in
      let fd = Vec.scale (1. /. (2. *. eps)) (Vec.sub qp qm) in
      Vec.approx_equal ~tol:1e-4 fd s.Spline.qd)

let test_spline_via_points_interpolates () =
  let points = [ (0., [| 0. |]); (1., [| 0.5 |]); (2.5, [| -0.2 |]); (4., [| 1. |]) ] in
  let traj = Spline.via_points points in
  Alcotest.(check (float 1e-9)) "duration" 4. traj.Spline.duration;
  List.iter
    (fun (t, q) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "passes via at t=%.1f" t)
        q.(0)
        (traj.Spline.at t).Spline.q.(0))
    points

let test_spline_via_points_c1 () =
  (* velocity continuous across the knot at t = 1 *)
  let points = [ (0., [| 0. |]); (1., [| 0.7 |]); (2., [| -0.3 |]) ] in
  let traj = Spline.via_points points in
  let eps = 1e-7 in
  let before = (traj.Spline.at (1. -. eps)).Spline.qd.(0) in
  let after = (traj.Spline.at (1. +. eps)).Spline.qd.(0) in
  Alcotest.(check (float 1e-4)) "C1 at knot" before after

let test_spline_via_points_validation () =
  let bad l =
    try
      ignore (Spline.via_points l);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "single point" true (bad [ (0., [| 1. |]) ]);
  Alcotest.(check bool) "nonzero start" true (bad [ (1., [| 0. |]); (2., [| 1. |]) ]);
  Alcotest.(check bool) "non-increasing" true
    (bad [ (0., [| 0. |]); (1., [| 1. |]); (1., [| 2. |]) ])

let test_spline_max_speed_scales () =
  let t1 = Spline.quintic ~q0:[| 0. |] ~q1:[| 1. |] ~duration:1. in
  let t2 = Spline.quintic ~q0:[| 0. |] ~q1:[| 1. |] ~duration:2. in
  Alcotest.(check (float 1e-6)) "half the speed at double the time"
    (Spline.max_speed t1 /. 2.) (Spline.max_speed t2)

let test_spline_drives_simulation () =
  (* a quintic reference tracked by computed-torque PD on the simulated
     plant: final state lands on the goal *)
  let chain = Robots.planar ~dof:2 ~reach:1. () in
  let model =
    Dynamics.model ~gravity:(Vec3.make 0. (-9.81) 0.) chain
      [| Dynamics.rod ~mass:1. ~length:0.5; Dynamics.rod ~mass:1. ~length:0.5 |]
  in
  let q0 = [| 0.3; -0.2 |] and q1 = [| 0.9; 0.5 |] in
  let traj = Spline.quintic ~q0 ~q1 ~duration:2. in
  let controller =
    Simulation.pd ~gravity_compensation:model ~kp:120. ~kd:25.
      ~target:(fun t -> (traj.Spline.at t).Spline.q)
      ()
  in
  let initial = { Simulation.time = 0.; q = Array.copy q0; qd = [| 0.; 0. |] } in
  let states = Simulation.simulate model controller ~dt:1e-3 ~duration:2.5 initial in
  let final = states.(Array.length states - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "tracked to goal (off by %.4f rad)" (Vec.dist final.Simulation.q q1))
    true
    (Vec.dist final.Simulation.q q1 < 5e-3)

(* ---- Viz ---- *)

let count_occurrences needle haystack =
  let n = String.length needle in
  let rec go idx acc =
    match Astring.String.find_sub ~start:idx ~sub:needle haystack with
    | Some i -> go (i + n) (acc + 1)
    | None -> acc
  in
  go 0 0

let test_viz_structure () =
  let chain = Robots.planar ~dof:4 ~reach:2. () in
  let rng = Rng.create 41 in
  let p1 = Viz.posture ~label:"before" (Target.random_config rng chain) in
  let p2 = Viz.posture ~label:"after" (Target.random_config rng chain) in
  let target = Target.reachable rng chain in
  let scene = [ Obstacles.sphere ~center:(Vec3.make 0.5 0.5 0.) ~radius:0.2 ] in
  let svg =
    Viz.render ~targets:[ target ] ~obstacles:scene chain [ p1; p2 ]
  in
  Alcotest.(check bool) "opens svg" true (Astring.String.is_prefix ~affix:"<svg" svg);
  Alcotest.(check bool) "closes svg" true
    (Astring.String.is_suffix ~affix:"</svg>\n" svg);
  Alcotest.(check int) "two polylines" 2 (count_occurrences "class=\"posture\"" svg);
  Alcotest.(check int) "joint dots = 2 x (dof+1)" 10
    (count_occurrences "class=\"joint\"" svg);
  Alcotest.(check int) "one target cross" 1 (count_occurrences "class=\"target\"" svg);
  Alcotest.(check int) "one obstacle" 1 (count_occurrences "class=\"obstacle\"" svg)

let test_viz_empty_rejected () =
  let chain = Robots.planar ~dof:3 ~reach:1. () in
  Alcotest.(check bool) "no postures rejected" true
    (try
       ignore (Viz.render chain []);
       false
     with Invalid_argument _ -> true)

let test_viz_points_within_canvas () =
  let chain = Robots.snake ~dof:12 in
  let rng = Rng.create 42 in
  let svg =
    Viz.render ~width:400 ~height:300 chain
      [ Viz.posture (Target.random_config rng chain) ]
  in
  (* every plotted cx/cy attribute stays within the canvas *)
  let ok = ref true in
  let check_attr name upper =
    let rec scan idx =
      match Astring.String.find_sub ~start:idx ~sub:(name ^ "=\"") svg with
      | None -> ()
      | Some i ->
        let start = i + String.length name + 2 in
        let stop = String.index_from svg start '"' in
        let v = float_of_string (String.sub svg start (stop - start)) in
        if v < -0.001 || v > upper +. 0.001 then ok := false;
        scan stop
    in
    scan 0
  in
  check_attr "cx" 400.;
  check_attr "cy" 300.;
  Alcotest.(check bool) "within canvas" true !ok

let test_viz_write () =
  let chain = Robots.planar ~dof:3 ~reach:1.5 () in
  let path = Filename.temp_file "dadu" ".svg" in
  Viz.write ~path chain [ Viz.posture (Array.make 3 0.3) ];
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check bool) "file has svg" true (Astring.String.is_prefix ~affix:"<svg" content)

(* ---- Traj ---- *)

let test_traj_line () =
  let a = Vec3.make 0. 0. 0. and b = Vec3.make 1. 2. 3. in
  let pts = Traj.line ~from:a ~to_:b ~samples:5 in
  Alcotest.(check int) "samples" 5 (Array.length pts);
  Alcotest.(check bool) "start" true (Vec3.approx_equal pts.(0) a);
  Alcotest.(check bool) "end" true (Vec3.approx_equal pts.(4) b)

let test_traj_circle_radius () =
  let center = Vec3.make 1. 1. 1. in
  let pts = Traj.circle ~center ~radius:0.5 ~normal:(Vec3.make 0. 0. 2.) ~samples:32 in
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "radius" 0.5 (Vec3.dist p center);
      Alcotest.(check (float 1e-9)) "in plane" 1. p.Vec3.z)
    pts

let test_traj_circle_plane_orthogonal () =
  let normal = Vec3.make 1. 1. 0.5 in
  let center = Vec3.zero in
  let pts = Traj.circle ~center ~radius:1. ~normal ~samples:16 in
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "orthogonal to normal" 0.
        (Vec3.dot p (Vec3.normalize normal)))
    pts

let test_traj_arc_length_line () =
  let a = Vec3.zero and b = Vec3.make 3. 4. 0. in
  Alcotest.(check (float 1e-9)) "length" 5.
    (Traj.arc_length (Traj.line ~from:a ~to_:b ~samples:11))

let test_traj_lissajous_bounds () =
  let amp = Vec3.make 1. 2. 0.5 in
  let pts =
    Traj.lissajous ~center:Vec3.zero ~amplitude:amp ~freq:(1, 2, 3) ~samples:64
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "bounded" true
        (Float.abs p.Vec3.x <= 1.0 +. 1e-9
        && Float.abs p.Vec3.y <= 2.0 +. 1e-9
        && Float.abs p.Vec3.z <= 0.5 +. 1e-9))
    pts

let test_traj_invalid () =
  Alcotest.(check bool) "few samples rejected" true
    (try
       ignore (Traj.line ~from:Vec3.zero ~to_:Vec3.ex ~samples:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad radius rejected" true
    (try
       ignore (Traj.circle ~center:Vec3.zero ~radius:0. ~normal:Vec3.ez ~samples:8);
       false
     with Invalid_argument _ -> true)

(* ---- differential tests: scratch FK/Jacobian vs the allocating oracle ----

   The workspace FK kernel ([Fk.run]) folds each DH transform into the
   running product without materializing the link matrix and skips products
   against the transform's structural zeros.  Every partial product it does
   compute is the same expression, in the same association order, as the
   oracle below (explicit [Dh.transform] matrices folded with the general
   [Mat4.mul]), so components may differ only in the sign of a zero —
   checked here as plain float equality or a ≤1-ulp gap, across random
   3–100-DOF chains mixing revolute and prismatic joints. *)

let ulp_close a b =
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || ((a < 0.) = (b < 0.)
     && Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))
        <= 1L)

let check_ulp name expected actual =
  Array.iteri
    (fun i e ->
      if not (ulp_close e actual.(i)) then
        Alcotest.failf "%s: component %d differs beyond 1 ulp: %h vs %h" name i
          e actual.(i))
    expected

(* Random chain with mixed joint kinds and twists outside Robots.random's
   quantized set, built deterministically from a seed. *)
let mixed_chain seed dof =
  let rng = Rng.create seed in
  let links =
    Array.init dof (fun i ->
        let dh =
          Dh.make
            ~a:(Rng.uniform rng (-0.5) 0.5)
            ~alpha:(Rng.uniform rng (-.pi) pi)
            ~d:(Rng.uniform rng (-0.3) 0.3)
            ~theta:(Rng.uniform rng (-.pi) pi)
            ()
        in
        let joint =
          if Rng.float rng 1. < 0.25 then
            Joint.prismatic ~lower:(-0.5) ~upper:0.5 ()
          else Joint.revolute ~lower:(-.pi) ~upper:pi ()
        in
        { Chain.name = Printf.sprintf "j%d" (i + 1); joint; dh })
  in
  Chain.make ~name:(Printf.sprintf "mixed-%d-%d" seed dof) links

let mixed_config seed chain =
  let rng = Rng.create (seed + 1) in
  Array.init (Chain.dof chain) (fun i ->
      let { Chain.joint; _ } = Chain.link chain i in
      Rng.uniform rng joint.Joint.lower joint.Joint.upper)

let oracle_pose chain q =
  let links = Chain.links chain in
  let acc = ref (Mat4.copy (Chain.base chain)) in
  Array.iteri
    (fun i { Chain.joint; dh; _ } ->
      acc := Mat4.mul !acc (Dh.transform dh joint.Joint.kind q.(i)))
    links;
  Mat4.mul !acc (Chain.tool chain)

let oracle_frames chain q =
  let links = Chain.links chain in
  let n = Array.length links in
  let frames = Array.make (n + 1) (Mat4.identity ()) in
  frames.(0) <- Mat4.copy (Chain.base chain);
  for i = 0 to n - 2 do
    let { Chain.joint; dh; _ } = links.(i) in
    frames.(i + 1) <- Mat4.mul frames.(i) (Dh.transform dh joint.Joint.kind q.(i))
  done;
  let { Chain.joint; dh; _ } = links.(n - 1) in
  frames.(n) <-
    Mat4.mul
      (Mat4.mul frames.(n - 1) (Dh.transform dh joint.Joint.kind q.(n - 1)))
      (Chain.tool chain);
  frames

let chain_case_gen = QCheck.(pair (int_range 3 100) (int_bound 9999))

let test_fk_scratch_differential =
  QCheck.Test.make ~name:"scratch FK = oracle on random chains" ~count:60
    chain_case_gen
    (fun (dof, seed) ->
      let chain = mixed_chain seed dof in
      let q = mixed_config seed chain in
      let expected = oracle_pose chain q in
      let scratch = Fk.make_scratch () in
      Fk.run ~scratch chain q;
      check_ulp "pose" expected (Fk.end_transform scratch);
      let dst = Array.make 3 nan in
      Fk.position_into ~scratch ~dst chain q;
      check_ulp "position_into"
        [| expected.(3); expected.(7); expected.(11) |]
        dst;
      let p = Fk.position ~scratch chain q in
      check_ulp "position" dst [| p.Vec3.x; p.Vec3.y; p.Vec3.z |];
      true)

let test_frames_scratch_differential =
  QCheck.Test.make ~name:"scratch frames = oracle on random chains" ~count:40
    chain_case_gen
    (fun (dof, seed) ->
      let chain = mixed_chain seed dof in
      let q = mixed_config seed chain in
      let expected = oracle_frames chain q in
      let scratch = Fk.make_scratch () in
      let actual = Fk.frames ~scratch chain q in
      Array.iteri
        (fun i e -> check_ulp (Printf.sprintf "frame %d" i) e actual.(i))
        expected;
      (* scratch-owned buffer: a second call must reproduce the same bits *)
      let again = Fk.frames ~scratch chain q in
      Array.iteri
        (fun i e ->
          Array.iteri
            (fun k x ->
              if Int64.bits_of_float x <> Int64.bits_of_float again.(i).(k) then
                Alcotest.failf "frames reuse: frame %d component %d" i k)
            e)
        actual;
      true)

let test_jacobian_into_differential =
  QCheck.Test.make ~name:"position_jacobian_into = Vec3 oracle" ~count:40
    chain_case_gen
    (fun (dof, seed) ->
      let chain = mixed_chain seed dof in
      let q = mixed_config seed chain in
      let frames = oracle_frames chain q in
      let p_end = Mat4.position frames.(dof) in
      let j = Mat.create 3 dof in
      (* frames from the scratch path feed the kernel, as in the solvers *)
      let scratch = Fk.make_scratch () in
      let scratch_frames = Fk.frames ~scratch chain q in
      Jacobian.position_jacobian_into ~dst:j chain scratch_frames;
      for i = 0 to dof - 1 do
        let { Chain.joint; _ } = Chain.link chain i in
        let col =
          match joint.Joint.kind with
          | Joint.Revolute ->
            Vec3.cross (Mat4.z_axis frames.(i))
              (Vec3.sub p_end (Mat4.position frames.(i)))
          | Joint.Prismatic -> Mat4.z_axis frames.(i)
        in
        if
          not
            (ulp_close col.Vec3.x (Mat.get j 0 i)
            && ulp_close col.Vec3.y (Mat.get j 1 i)
            && ulp_close col.Vec3.z (Mat.get j 2 i))
        then Alcotest.failf "jacobian column %d differs beyond 1 ulp" i
      done;
      true)

(* Corner case: zero-length links collapse the whole chain onto the base
   frame; the fused kernel must still produce an exact identity. *)
let test_fk_zero_length_links () =
  let links =
    Array.init 8 (fun i ->
        { Chain.name = Printf.sprintf "z%d" i;
          joint = Joint.revolute ();
          dh = Dh.make () })
  in
  let chain = Chain.make ~name:"degenerate" links in
  let q = Array.make 8 0. in
  let scratch = Fk.make_scratch () in
  Fk.run ~scratch chain q;
  check_ulp "zero-length pose" (Mat4.identity ()) (Fk.end_transform scratch);
  check_ulp "zero-length oracle" (oracle_pose chain q) (Fk.end_transform scratch)

(* Corner case: configurations pinned exactly at the joint limits (the
   angles solvers clamp to), for a seed-pinned chain. *)
let test_fk_limit_boundaries () =
  let chain = mixed_chain 424242 17 in
  let scratch = Fk.make_scratch () in
  List.iter
    (fun pick ->
      let q =
        Array.init 17 (fun i ->
            let { Chain.joint; _ } = Chain.link chain i in
            pick joint)
      in
      let expected = oracle_pose chain q in
      Fk.run ~scratch chain q;
      check_ulp "limit pose" expected (Fk.end_transform scratch))
    [ (fun j -> j.Joint.lower); (fun j -> j.Joint.upper); (fun _ -> 0.) ]

(* The FK scratch caches per-chain link constants; switching chains (and
   DOFs) on one scratch must recompile, never reuse stale constants. *)
let test_fk_scratch_across_chains () =
  let a = mixed_chain 7 30 and b = mixed_chain 8 12 in
  let qa = mixed_config 7 a and qb = mixed_config 8 b in
  let shared = Fk.make_scratch () in
  let fresh () = Fk.make_scratch () in
  Fk.run ~scratch:shared a qa;
  let ea = Mat4.copy (Fk.end_transform shared) in
  Fk.run ~scratch:shared b qb;
  let eb = Mat4.copy (Fk.end_transform shared) in
  Fk.run ~scratch:shared a qa;
  let ea' = Mat4.copy (Fk.end_transform shared) in
  let want_a = fresh () and want_b = fresh () in
  Fk.run ~scratch:want_a a qa;
  Fk.run ~scratch:want_b b qb;
  check_ulp "chain a on shared scratch" (Fk.end_transform want_a) ea;
  check_ulp "chain b on shared scratch" (Fk.end_transform want_b) eb;
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float ea'.(i) then
        Alcotest.failf "revisiting chain a is not bit-stable (component %d)" i)
    ea

(* ---- speculation kernel: positions_many_into / speculate_range_into ----

   The link-major kernel folds the chain tool→base (right-to-left) while
   [Fk.run] folds base→tool, so the two reassociate the same product and
   positions agree only up to accumulated rounding — checked with a
   reach-scaled tolerance, not ulps.  Everything the kernel promises
   exactly is checked bitwise: a range-partitioned sweep writes the same
   bits as one full-range call, [err2] is exactly the fused squared
   distance of the written position, and candidates are independent. *)

let spec_close ~scale a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. scale

let candidate_oracle chain theta dtheta c =
  let dof = Chain.dof chain in
  (* the same expression order the kernel uses: α·Δθᵢ + θᵢ *)
  let q = Array.init dof (fun i -> (c *. dtheta.(i)) +. theta.(i)) in
  Fk.position chain q

let spec_case seed dof =
  let chain = mixed_chain seed dof in
  let theta = mixed_config seed chain in
  let rng = Rng.create (seed + 2) in
  let dtheta = Array.init dof (fun _ -> Rng.uniform rng (-1.) 1.) in
  let count = 1 + Rng.int rng 64 in
  let coeffs = Array.init count (fun _ -> Rng.uniform rng (-1.5) 1.5) in
  (chain, theta, dtheta, count, coeffs)

let bits = Int64.bits_of_float

let test_positions_many_differential =
  QCheck.Test.make ~name:"positions_many_into = per-candidate FK oracle"
    ~count:60 chain_case_gen (fun (dof, seed) ->
      let chain, theta, dtheta, count, coeffs = spec_case seed dof in
      let scratch = Fk.make_scratch () in
      let dst = Array.make (3 * count) nan in
      Fk.positions_many_into ~scratch ~dst chain ~theta ~dtheta ~coeffs ~count;
      let scale = Chain.reach chain in
      for k = 0 to count - 1 do
        let p = candidate_oracle chain theta dtheta coeffs.(k) in
        if
          not
            (spec_close ~scale p.Vec3.x dst.(k)
            && spec_close ~scale p.Vec3.y dst.(count + k)
            && spec_close ~scale p.Vec3.z dst.((2 * count) + k))
        then
          Alcotest.failf
            "candidate %d drifted beyond reassociation tolerance" k
      done;
      true)

let test_speculate_matches_positions_many =
  QCheck.Test.make
    ~name:"speculate_range_into = positions_many_into + fused err²" ~count:60
    chain_case_gen (fun (dof, seed) ->
      let chain, theta, dtheta, count, coeffs = spec_case seed dof in
      let scratch = Fk.make_scratch () in
      let dst = Array.make (3 * count) nan in
      Fk.positions_many_into ~scratch ~dst chain ~theta ~dtheta ~coeffs ~count;
      let rng = Rng.create (seed + 3) in
      let tx = Rng.uniform rng (-2.) 2.
      and ty = Rng.uniform rng (-2.) 2.
      and tz = Rng.uniform rng (-2.) 2. in
      let pos = Array.make (3 * count) nan in
      let err2 = Array.make count nan in
      Fk.speculate_range_into ~scratch ~pos ~err2 ~tx ~ty ~tz chain ~theta
        ~dtheta ~coeffs ~stride:count ~lo:0 ~hi:count;
      for i = 0 to (3 * count) - 1 do
        if bits pos.(i) <> bits dst.(i) then
          Alcotest.failf "pos component %d not bit-identical across kernels" i
      done;
      for k = 0 to count - 1 do
        let dx = tx -. pos.(k)
        and dy = ty -. pos.(count + k)
        and dz = tz -. pos.((2 * count) + k) in
        let e = ((dx *. dx) +. (dy *. dy)) +. (dz *. dz) in
        if bits e <> bits err2.(k) then
          Alcotest.failf "err2 %d is not the fused squared distance" k
      done;
      true)

let test_speculate_partition_bit_identical =
  QCheck.Test.make ~name:"range-partitioned sweeps = full sweep, bitwise"
    ~count:40 chain_case_gen (fun (dof, seed) ->
      let chain, theta, dtheta, count, coeffs = spec_case seed dof in
      let scratch = Fk.make_scratch () in
      Fk.precompile scratch chain;
      let sweep pos err2 lo hi =
        Fk.speculate_range_into ~scratch ~pos ~err2 ~tx:0.3 ~ty:(-0.7)
          ~tz:1.1 chain ~theta ~dtheta ~coeffs ~stride:count ~lo ~hi
      in
      let full_pos = Array.make (3 * count) nan in
      let full_err2 = Array.make count nan in
      sweep full_pos full_err2 0 count;
      let part_pos = Array.make (3 * count) nan in
      let part_err2 = Array.make count nan in
      let rng = Rng.create (seed + 4) in
      let grain = 1 + Rng.int rng count in
      let lo = ref 0 in
      while !lo < count do
        let hi = Stdlib.min count (!lo + grain) in
        sweep part_pos part_err2 !lo hi;
        lo := hi
      done;
      for i = 0 to (3 * count) - 1 do
        if bits part_pos.(i) <> bits full_pos.(i) then
          Alcotest.failf "partitioned pos %d differs (grain %d)" i grain
      done;
      for k = 0 to count - 1 do
        if bits part_err2.(k) <> bits full_err2.(k) then
          Alcotest.failf "partitioned err2 %d differs (grain %d)" k grain
      done;
      true)

(* zero coefficients collapse every candidate onto θ itself: planes must be
   constant bit for bit (candidate independence), and match the forward
   kernels up to reassociation *)
let test_positions_many_zero_coeff () =
  let chain = mixed_chain 99 40 in
  let theta = mixed_config 99 chain in
  let dtheta = Array.make 40 0.37 in
  let count = 8 in
  let coeffs = Array.make count 0. in
  let scratch = Fk.make_scratch () in
  let dst = Array.make (3 * count) nan in
  Fk.positions_many_into ~scratch ~dst chain ~theta ~dtheta ~coeffs ~count;
  for k = 1 to count - 1 do
    for plane = 0 to 2 do
      if bits dst.((plane * count) + k) <> bits dst.(plane * count) then
        Alcotest.failf "zero-coeff candidate %d plane %d differs" k plane
    done
  done;
  let p = Fk.position chain theta in
  let scale = Chain.reach chain in
  Alcotest.(check bool) "matches forward FK" true
    (spec_close ~scale p.Vec3.x dst.(0)
    && spec_close ~scale p.Vec3.y dst.(count)
    && spec_close ~scale p.Vec3.z dst.(2 * count))

let test_speculate_validation () =
  let chain = mixed_chain 5 6 in
  let theta = Array.make 6 0. and dtheta = Array.make 6 0. in
  let scratch = Fk.make_scratch () in
  let expect name f =
    Alcotest.(check bool) name true
      (try
         f ();
         false
       with Invalid_argument _ -> true)
  in
  expect "count 0" (fun () ->
      Fk.positions_many_into ~scratch ~dst:[||] chain ~theta ~dtheta
        ~coeffs:[||] ~count:0);
  expect "short dst" (fun () ->
      Fk.positions_many_into ~scratch ~dst:(Array.make 5 0.) chain ~theta
        ~dtheta ~coeffs:(Array.make 2 0.) ~count:2);
  expect "theta length" (fun () ->
      Fk.positions_many_into ~scratch ~dst:(Array.make 6 0.) chain
        ~theta:(Array.make 5 0.) ~dtheta ~coeffs:(Array.make 2 0.) ~count:2);
  expect "dtheta length" (fun () ->
      Fk.positions_many_into ~scratch ~dst:(Array.make 6 0.) chain ~theta
        ~dtheta:(Array.make 7 0.) ~coeffs:(Array.make 2 0.) ~count:2);
  expect "short coeffs" (fun () ->
      Fk.speculate_range_into ~scratch ~pos:(Array.make 6 0.)
        ~err2:(Array.make 2 0.) ~tx:0. ~ty:0. ~tz:0. chain ~theta ~dtheta
        ~coeffs:[| 0. |] ~stride:2 ~lo:0 ~hi:2);
  expect "hi beyond stride" (fun () ->
      Fk.speculate_range_into ~scratch ~pos:(Array.make 6 0.)
        ~err2:(Array.make 2 0.) ~tx:0. ~ty:0. ~tz:0. chain ~theta ~dtheta
        ~coeffs:(Array.make 4 0.) ~stride:2 ~lo:0 ~hi:3);
  expect "negative lo" (fun () ->
      Fk.speculate_range_into ~scratch ~pos:(Array.make 6 0.)
        ~err2:(Array.make 2 0.) ~tx:0. ~ty:0. ~tz:0. chain ~theta ~dtheta
        ~coeffs:(Array.make 2 0.) ~stride:2 ~lo:(-1) ~hi:2);
  expect "short err2" (fun () ->
      Fk.speculate_range_into ~scratch ~pos:(Array.make 6 0.)
        ~err2:[| 0. |] ~tx:0. ~ty:0. ~tz:0. chain ~theta ~dtheta
        ~coeffs:(Array.make 2 0.) ~stride:2 ~lo:0 ~hi:2)

let test_chain_rejects_non_affine () =
  let bad = Mat4.identity () in
  bad.(12) <- 0.5;
  let links = [| { Chain.name = "j1"; joint = Joint.revolute (); dh = Dh.make ~a:1. () } |] in
  Alcotest.check_raises "non-affine base"
    (Invalid_argument "Chain.make: base must be affine (bottom row [0 0 0 1])")
    (fun () -> ignore (Chain.make ~base:bad links));
  Alcotest.check_raises "non-affine tool"
    (Invalid_argument "Chain.make: tool must be affine (bottom row [0 0 0 1])")
    (fun () -> ignore (Chain.make ~tool:bad links))

let () =
  Alcotest.run "dadu_kinematics"
    [
      ( "fk-differential",
        [
          qcheck test_fk_scratch_differential;
          qcheck test_frames_scratch_differential;
          qcheck test_jacobian_into_differential;
          Alcotest.test_case "zero-length links" `Quick test_fk_zero_length_links;
          Alcotest.test_case "joint-limit boundary angles" `Quick
            test_fk_limit_boundaries;
          Alcotest.test_case "scratch reuse across chains" `Quick
            test_fk_scratch_across_chains;
          Alcotest.test_case "Chain.make rejects non-affine" `Quick
            test_chain_rejects_non_affine;
        ] );
      ( "speculation-kernel",
        [
          qcheck test_positions_many_differential;
          qcheck test_speculate_matches_positions_many;
          qcheck test_speculate_partition_bit_identical;
          Alcotest.test_case "zero coefficients" `Quick
            test_positions_many_zero_coeff;
          Alcotest.test_case "argument validation" `Quick
            test_speculate_validation;
        ] );
      ( "joint",
        [
          Alcotest.test_case "clamp" `Quick test_joint_clamp;
          Alcotest.test_case "inside" `Quick test_joint_inside;
          Alcotest.test_case "unbounded" `Quick test_joint_unbounded;
          Alcotest.test_case "span" `Quick test_joint_span;
          Alcotest.test_case "bad limits" `Quick test_joint_bad_limits;
        ] );
      ( "dh",
        [
          Alcotest.test_case "identity" `Quick test_dh_identity;
          Alcotest.test_case "revolute variable" `Quick test_dh_revolute_variable;
          Alcotest.test_case "prismatic variable" `Quick test_dh_prismatic_variable;
          Alcotest.test_case "link length" `Quick test_dh_link_length;
          Alcotest.test_case "transform_into" `Quick test_dh_transform_into_matches;
          qcheck test_dh_rigid;
        ] );
      ( "chain",
        [
          Alcotest.test_case "dof" `Quick test_chain_dof;
          Alcotest.test_case "empty" `Quick test_chain_empty;
          Alcotest.test_case "reach" `Quick test_chain_reach;
          Alcotest.test_case "clamp_config" `Quick test_chain_clamp_config;
          Alcotest.test_case "check_config" `Quick test_chain_check_config;
          Alcotest.test_case "base copied" `Quick test_chain_base_tool_copied;
        ] );
      ( "fk",
        [
          Alcotest.test_case "two-link straight" `Quick test_fk_two_link_zero;
          Alcotest.test_case "two-link elbow" `Quick test_fk_two_link_elbow;
          Alcotest.test_case "planar angle-sum" `Quick test_fk_planar_angle_sum;
          Alcotest.test_case "frames shape" `Quick test_fk_frames_shape;
          Alcotest.test_case "pose matches position" `Quick test_fk_pose_matches_position;
          Alcotest.test_case "scratch equivalence" `Quick test_fk_scratch_equivalence;
          Alcotest.test_case "tool transform" `Quick test_fk_tool;
          Alcotest.test_case "prismatic joint" `Quick test_fk_prismatic;
          Alcotest.test_case "flops monotone" `Quick test_fk_flops_positive;
          qcheck test_fk_within_reach;
          qcheck test_fk_pose_rigid;
        ] );
      ( "jacobian",
        [
          qcheck test_jacobian_matches_numerical;
          qcheck test_jacobian_matches_central_fd;
          Alcotest.test_case "scara vs numerical" `Quick
            test_jacobian_matches_numerical_prismatic;
          Alcotest.test_case "planar z-row" `Quick test_jacobian_planar_z_row_zero;
          Alcotest.test_case "full top rows" `Quick test_full_jacobian_top_matches;
          Alcotest.test_case "full angular part" `Quick test_full_jacobian_angular_revolute;
          Alcotest.test_case "of_frames variant" `Quick test_jacobian_of_frames_matches;
          Alcotest.test_case "frame count" `Quick test_jacobian_frame_count;
        ] );
      ( "robots",
        [
          Alcotest.test_case "factory dofs" `Quick test_robots_dofs;
          Alcotest.test_case "eval link length" `Quick test_robots_eval_chain_link_length;
          Alcotest.test_case "scara prismatic" `Quick test_robots_scara_prismatic;
          Alcotest.test_case "snake limits" `Quick test_robots_snake_limits;
          Alcotest.test_case "random deterministic" `Quick test_robots_random_deterministic;
          Alcotest.test_case "invalid dof" `Quick test_robots_invalid_dof;
        ] );
      ( "target",
        [
          qcheck test_target_reachable;
          Alcotest.test_case "config within limits" `Quick test_target_config_within_limits;
          Alcotest.test_case "batch size" `Quick test_target_batch_size;
          Alcotest.test_case "unreachable outside" `Quick test_target_unreachable_outside;
        ] );
      ( "chain-format",
        [
          Alcotest.test_case "parse" `Quick test_format_parse;
          Alcotest.test_case "round trip" `Quick test_format_roundtrip;
          Alcotest.test_case "errors" `Quick test_format_errors;
          Alcotest.test_case "comments and blanks" `Quick test_format_comments_and_blanks;
          Alcotest.test_case "parse file" `Quick test_format_parse_file;
          Alcotest.test_case "missing file" `Quick test_format_missing_file;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "singular manipulability" `Quick
            test_workspace_manipulability_singular;
          Alcotest.test_case "positive manipulability" `Quick
            test_workspace_manipulability_positive;
          Alcotest.test_case "condition >= 1" `Quick test_workspace_condition_ge_one;
          Alcotest.test_case "sample stats" `Quick test_workspace_sample;
          Alcotest.test_case "eval chain conditioning" `Slow
            test_workspace_low_twist_worse_conditioned;
          Alcotest.test_case "manipulability ellipsoid" `Quick test_workspace_ellipsoid;
        ] );
      ( "obstacles",
        [
          Alcotest.test_case "point-segment distance" `Quick test_obstacle_point_segment;
          qcheck test_obstacle_point_segment_symmetry;
          Alcotest.test_case "segment clearance" `Quick test_obstacle_segment_clearance;
          Alcotest.test_case "chain clearance" `Quick test_obstacle_chain_clearance;
          Alcotest.test_case "empty scene" `Quick test_obstacle_empty_scene;
          Alcotest.test_case "invalid radius" `Quick test_obstacle_invalid_radius;
          Alcotest.test_case "gradient pushes away" `Quick test_obstacle_gradient_pushes_away;
          Alcotest.test_case "objective inactive when clear" `Quick
            test_obstacle_objective_inactive_when_clear;
          Alcotest.test_case "avoidance via nullspace" `Slow
            test_obstacle_avoidance_via_nullspace;
        ] );
      ( "rrt",
        [
          Alcotest.test_case "plans around wall" `Slow test_rrt_plans_around_wall;
          Alcotest.test_case "free space" `Quick test_rrt_free_space_direct;
          Alcotest.test_case "rejects colliding endpoints" `Quick
            test_rrt_rejects_colliding_endpoints;
          Alcotest.test_case "deterministic" `Slow test_rrt_deterministic;
          Alcotest.test_case "shortcut improves" `Slow test_rrt_shortcut_improves;
          Alcotest.test_case "path length" `Quick test_rrt_path_length;
        ] );
      ( "spline",
        [
          Alcotest.test_case "quintic boundaries" `Quick test_spline_quintic_boundaries;
          Alcotest.test_case "quintic clamps" `Quick test_spline_quintic_clamps;
          qcheck test_spline_quintic_velocity_consistent;
          Alcotest.test_case "via points interpolate" `Quick
            test_spline_via_points_interpolates;
          Alcotest.test_case "via points C1" `Quick test_spline_via_points_c1;
          Alcotest.test_case "via validation" `Quick test_spline_via_points_validation;
          Alcotest.test_case "max speed scaling" `Quick test_spline_max_speed_scales;
          Alcotest.test_case "drives simulation" `Slow test_spline_drives_simulation;
        ] );
      ( "viz",
        [
          Alcotest.test_case "structure" `Quick test_viz_structure;
          Alcotest.test_case "empty rejected" `Quick test_viz_empty_rejected;
          Alcotest.test_case "points within canvas" `Quick test_viz_points_within_canvas;
          Alcotest.test_case "write" `Quick test_viz_write;
        ] );
      ( "traj",
        [
          Alcotest.test_case "line" `Quick test_traj_line;
          Alcotest.test_case "circle radius/plane" `Quick test_traj_circle_radius;
          Alcotest.test_case "circle orthogonality" `Quick test_traj_circle_plane_orthogonal;
          Alcotest.test_case "arc length" `Quick test_traj_arc_length_line;
          Alcotest.test_case "lissajous bounds" `Quick test_traj_lissajous_bounds;
          Alcotest.test_case "invalid inputs" `Quick test_traj_invalid;
        ] );
    ]
