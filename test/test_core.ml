(* Unit, integration, and property tests for Dadu_core: the IK solver
   suite. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
module Rng = Dadu_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* Small chains keep solver tests fast; caps are generous enough that a
   healthy solver converges well before hitting them. *)
let cfg ?(max_iterations = 3_000) () = { Ik.default_config with max_iterations }

let eval12 = Robots.eval_chain ~dof:12

let problems ?(chain = eval12) ?(seed = 11) n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Ik.random_problem rng chain)

let assert_converged name (r : Ik.result) =
  Alcotest.(check bool)
    (name ^ ": converged (err " ^ string_of_float r.Ik.error ^ ")")
    true
    (r.Ik.status = Ik.Converged);
  Alcotest.(check bool) (name ^ ": error below accuracy") true
    (r.Ik.error < Ik.default_config.Ik.accuracy)

(* solution check straight from FK, independent of the solver's own
   bookkeeping *)
let assert_solves name (p : Ik.problem) (r : Ik.result) =
  let actual = Ik.error_of p.Ik.chain p.Ik.target r.Ik.theta in
  Alcotest.(check bool) (name ^ ": FK confirms the solution") true
    (actual < Ik.default_config.Ik.accuracy)

(* ---- Ik ---- *)

let test_ik_problem_validates () =
  Alcotest.(check bool) "wrong dof rejected" true
    (try
       ignore (Ik.problem ~chain:eval12 ~target:Vec3.zero ~theta0:[| 0. |]);
       false
     with Invalid_argument _ -> true)

let test_ik_problem_copies_theta0 () =
  let theta0 = Array.make 12 0.1 in
  let p = Ik.problem ~chain:eval12 ~target:Vec3.zero ~theta0 in
  theta0.(0) <- 99.;
  Alcotest.(check (float 1e-12)) "copied" 0.1 p.Ik.theta0.(0)

let test_ik_defaults () =
  Alcotest.(check (float 1e-12)) "accuracy 1e-2" 1e-2 Ik.default_config.Ik.accuracy;
  Alcotest.(check int) "cap 10k" 10_000 Ik.default_config.Ik.max_iterations;
  Alcotest.(check bool) "no stall detection" true
    (Ik.default_config.Ik.stall_iterations = None)

let test_ik_work () =
  let r =
    {
      Ik.theta = [||];
      error = 0.;
      iterations = 7;
      speculations = 64;
      status = Ik.Converged;
      svd_sweeps = 0;
    }
  in
  Alcotest.(check int) "work = specs*iters" 448 (Ik.work r)

let test_ik_error_of_zero () =
  let q = Array.make 12 0.3 in
  let target = Fk.position eval12 q in
  Alcotest.(check (float 1e-9)) "zero at exact solution" 0. (Ik.error_of eval12 target q)

(* ---- Loop ---- *)

let test_loop_immediate_convergence () =
  let q = Array.make 12 0.2 in
  let p = Ik.problem ~chain:eval12 ~target:(Fk.position eval12 q) ~theta0:q in
  let r =
    Loop.run ~workspace:(Workspace.create ~dof:12) ~speculations:1
      ~step:(fun _ -> Alcotest.fail "step must not run")
      p
  in
  Alcotest.(check int) "zero iterations" 0 r.Ik.iterations;
  Alcotest.(check bool) "converged" true (r.Ik.status = Ik.Converged)

let test_loop_cap () =
  let p = List.hd (Array.to_list (problems 1)) in
  let count = ref 0 in
  let r =
    Loop.run
      ~config:{ Ik.default_config with max_iterations = 17 }
      ~workspace:(Workspace.create ~dof:12) ~speculations:1
      ~step:(fun ws ->
        incr count;
        Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
        0)
      p
  in
  Alcotest.(check int) "step calls = cap" 17 !count;
  Alcotest.(check int) "iterations = cap" 17 r.Ik.iterations;
  Alcotest.(check bool) "status max-iterations" true (r.Ik.status = Ik.Max_iterations)

let test_loop_stall_detection () =
  let p = List.hd (Array.to_list (problems 1)) in
  let r =
    Loop.run
      ~config:{ Ik.default_config with max_iterations = 1000; stall_iterations = Some 5 }
      ~workspace:(Workspace.create ~dof:12) ~speculations:1
      ~step:(fun ws ->
        Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
        0)
      p
  in
  Alcotest.(check bool) "stalled" true (r.Ik.status = Ik.Stalled);
  Alcotest.(check bool) "stopped early" true (r.Ik.iterations < 20)

let test_loop_accumulates_sweeps () =
  let p = List.hd (Array.to_list (problems 1)) in
  let r =
    Loop.run
      ~config:{ Ik.default_config with max_iterations = 4 }
      ~workspace:(Workspace.create ~dof:12) ~speculations:1
      ~step:(fun ws ->
        Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
        3)
      p
  in
  Alcotest.(check int) "sweeps summed" 12 r.Ik.svd_sweeps

(* ---- Alpha ---- *)

let test_alpha_known () =
  (* J = [1 0 0; 0 1 0; 0 0 1] (3 joints), e = (2,0,0):
     JJᵀe = e, so α = e·e / e·e = 1. *)
  let j = Mat.identity 3 in
  let e = Vec3.make 2. 0. 0. in
  let dtheta_base = Mat.mul_transpose_vec j (Vec3.to_vec e) in
  Alcotest.(check (float 1e-12)) "alpha" 1. (Alpha.buss ~j ~e ~dtheta_base)

let test_alpha_degenerate () =
  let j = Mat.create 3 4 in
  let e = Vec3.make 1. 0. 0. in
  let dtheta_base = Mat.mul_transpose_vec j (Vec3.to_vec e) in
  Alcotest.(check (float 1e-12)) "zero on singular" 0. (Alpha.buss ~j ~e ~dtheta_base)

let test_alpha_scale_invariance =
  (* α(J, e) for e' = c·e: JJᵀe' = c·JJᵀe → α unchanged. *)
  QCheck.Test.make ~name:"alpha invariant to error scaling" ~count:100
    QCheck.(pair (int_range 0 10_000) (float_range 0.1 5.)) (fun (seed, c) ->
      let rng = Rng.create seed in
      let chain = Robots.eval_chain ~dof:6 in
      let q = Target.random_config rng chain in
      let j = Jacobian.position_jacobian chain q in
      let e = Vec3.make (Rng.gaussian rng) (Rng.gaussian rng) (Rng.gaussian rng) in
      let a1 =
        Alpha.buss ~j ~e ~dtheta_base:(Mat.mul_transpose_vec j (Vec3.to_vec e))
      in
      let e' = Vec3.scale c e in
      let a2 =
        Alpha.buss ~j ~e:e' ~dtheta_base:(Mat.mul_transpose_vec j (Vec3.to_vec e'))
      in
      Float.abs (a1 -. a2) < 1e-6 *. Float.max 1. (Float.abs a1))

(* ---- Jt_serial ---- *)

let test_jt_stability_bound_planar () =
  (* planar 3-link, 1 m links: distal reaches are 3, 2, 1 → Σ r² = 14 *)
  let c = Robots.planar ~dof:3 ~reach:3. () in
  Alcotest.(check (float 1e-9)) "bound" 14. (Jt_serial.stability_bound c)

let test_jt_serial_converges_small () =
  let chain = Robots.planar ~dof:3 ~reach:3. () in
  Array.iter
    (fun p ->
      let r = Jt_serial.solve ~config:(cfg ~max_iterations:10_000 ()) p in
      assert_converged "jt-serial" r;
      assert_solves "jt-serial" p r)
    (problems ~chain ~seed:21 5)

let test_jt_serial_error_decreases () =
  let p = (problems ~seed:22 1).(0) in
  let r = Jt_serial.solve ~config:(cfg ~max_iterations:50 ()) p in
  let initial = Ik.error_of p.Ik.chain p.Ik.target p.Ik.theta0 in
  Alcotest.(check bool) "error reduced" true (r.Ik.error < initial)

let test_jt_serial_alpha_override () =
  let p = (problems ~seed:23 1).(0) in
  let r1 = Jt_serial.solve ~alpha:1e-4 ~config:(cfg ~max_iterations:100 ()) p in
  let r2 = Jt_serial.solve ~alpha:1e-4 ~config:(cfg ~max_iterations:100 ()) p in
  Alcotest.(check bool) "deterministic" true (r1.Ik.theta = r2.Ik.theta)

let test_jt_serial_gain_speeds_up () =
  (* larger (still stable) gain must not be slower on a fixed batch *)
  let ps = problems ~seed:24 5 in
  let iters gain =
    Array.fold_left
      (fun acc p ->
        acc + (Jt_serial.solve ~gain ~config:(cfg ~max_iterations:10_000 ()) p).Ik.iterations)
      0 ps
  in
  Alcotest.(check bool) "gain 1.0 <= gain 0.25 iterations" true (iters 1.0 <= iters 0.25)

(* ---- Jt_buss / Quick_ik ---- *)

let test_jt_buss_converges () =
  Array.iter
    (fun p ->
      let r = Jt_buss.solve ~config:(cfg ()) p in
      assert_converged "jt-buss" r;
      assert_solves "jt-buss" p r)
    (problems ~seed:31 5)

let test_jt_buss_beats_jt_serial () =
  let ps = problems ~seed:32 8 in
  let total solve =
    Array.fold_left (fun acc p -> acc + (solve p).Ik.iterations) 0 ps
  in
  let buss = total (fun p -> Jt_buss.solve ~config:(cfg ~max_iterations:10_000 ()) p) in
  let serial = total (fun p -> Jt_serial.solve ~config:(cfg ~max_iterations:10_000 ()) p) in
  Alcotest.(check bool) "adaptive alpha converges faster" true (buss < serial)

let test_quick_ik_converges () =
  Array.iter
    (fun p ->
      let r = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
      assert_converged "quick-ik" r;
      assert_solves "quick-ik" p r;
      Alcotest.(check int) "speculations recorded" 64 r.Ik.speculations)
    (problems ~seed:33 5)

let test_quick_ik_invalid_speculations () =
  let p = (problems 1).(0) in
  Alcotest.check_raises "non-positive speculations"
    (Invalid_argument "Quick_ik.solve: speculations must be positive") (fun () ->
      ignore (Quick_ik.solve ~speculations:0 p))

let test_quick_ik_one_speculation_is_buss () =
  (* with Max = 1, the only candidate is α_1 = α_base: identical to
     Jt_buss step-for-step *)
  Array.iter
    (fun p ->
      let q = Quick_ik.solve ~speculations:1 ~config:(cfg ()) p in
      let b = Jt_buss.solve ~config:(cfg ()) p in
      Alcotest.(check int) "same iterations" b.Ik.iterations q.Ik.iterations;
      Alcotest.(check bool) "same final angles" true (q.Ik.theta = b.Ik.theta))
    (problems ~seed:34 4)

let test_quick_ik_parallel_bit_identical () =
  let pool = Dadu_util.Domain_pool.create 4 in
  Fun.protect ~finally:(fun () -> Dadu_util.Domain_pool.shutdown pool) @@ fun () ->
  Array.iter
    (fun p ->
      let seq = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
      let par =
        Quick_ik.solve ~speculations:64 ~mode:(Quick_ik.Parallel pool) ~config:(cfg ()) p
      in
      Alcotest.(check int) "same iterations" seq.Ik.iterations par.Ik.iterations;
      Alcotest.(check bool) "bit-identical theta" true (seq.Ik.theta = par.Ik.theta);
      Alcotest.(check (float 0.)) "bit-identical error" seq.Ik.error par.Ik.error)
    (problems ~seed:35 4)

(* Above the dof×Max dispatch cutover the Parallel mode really runs on the
   pool (chunked sweeps); candidates are independent, so the chunked result
   must still match Sequential bit for bit — across pool sizes, which
   exercise different chunk shapes. *)
let test_quick_ik_parallel_bit_identical_above_cutover () =
  let chain = Robots.eval_chain ~dof:100 in
  Array.iter
    (fun p ->
      let seq = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
      List.iter
        (fun pool_size ->
          let pool = Dadu_util.Domain_pool.create pool_size in
          Fun.protect ~finally:(fun () -> Dadu_util.Domain_pool.shutdown pool)
          @@ fun () ->
          let par =
            Quick_ik.solve ~speculations:64 ~mode:(Quick_ik.Parallel pool)
              ~config:(cfg ()) p
          in
          Alcotest.(check int)
            (Printf.sprintf "same iterations (pool %d)" pool_size)
            seq.Ik.iterations par.Ik.iterations;
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical theta (pool %d)" pool_size)
            true (seq.Ik.theta = par.Ik.theta);
          Alcotest.(check (float 0.))
            (Printf.sprintf "bit-identical error (pool %d)" pool_size)
            seq.Ik.error par.Ik.error)
        [ 2; 3; 5 ])
    (problems ~chain ~seed:44 2)

(* Satellite: the hoisted Log_spaced power table must reproduce the
   historical per-iteration closed form α_base·ratio^(Max−1−k) within
   1 ulp (it is in fact bit-exact: the same [**] calls, paid once). *)
let test_quick_ik_log_spaced_ladder_pin () =
  let ulp_close a b =
    a = b
    || Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))
       <= 1L
  in
  List.iter
    (fun speculations ->
      let ws = Workspace.create ~dof:12 in
      let p = (problems ~seed:45 1).(0) in
      ignore
        (Quick_ik.solve ~speculations ~strategy:Quick_ik.Log_spaced
           ~workspace:ws ~config:(cfg ()) p);
      Alcotest.(check int) "ladder compiled for this Max" speculations
        ws.Workspace.ladder_for;
      let max = float_of_int speculations in
      let ratio = (1. /. max) ** (1. /. (max -. 1.)) in
      for k = 0 to speculations - 1 do
        let expected = ratio ** (max -. float_of_int (k + 1)) in
        if not (ulp_close expected ws.Workspace.ladder.(k)) then
          Alcotest.failf "Max %d: ladder.(%d) = %h, closed form %h"
            speculations k
            ws.Workspace.ladder.(k)
            expected
      done;
      (* endpoints of the geometric ladder: α_min = α_base/Max at k = 0,
         α_max = α_base at k = Max−1 *)
      Alcotest.(check bool) "top of ladder is 1" true
        (ulp_close 1. ws.Workspace.ladder.(speculations - 1));
      (* ratio^(Max−1) = 1/Max only up to the two [**] roundings *)
      Alcotest.(check bool) "bottom of ladder is ~1/Max" true
        (Float.abs ((ws.Workspace.ladder.(0) *. max) -. 1.) < 1e-12))
    [ 16; 64 ]

let test_quick_ik_extended_one_is_uniform () =
  Array.iter
    (fun p ->
      let u = Quick_ik.solve ~speculations:16 ~strategy:Quick_ik.Uniform ~config:(cfg ()) p in
      let e =
        Quick_ik.solve ~speculations:16 ~strategy:(Quick_ik.Extended 1.0) ~config:(cfg ()) p
      in
      Alcotest.(check bool) "identical" true (u.Ik.theta = e.Ik.theta))
    (problems ~seed:36 3)

let test_quick_ik_strategies_converge () =
  let p = (problems ~seed:37 1).(0) in
  List.iter
    (fun (name, strategy) ->
      let r = Quick_ik.solve ~speculations:32 ~strategy ~config:(cfg ()) p in
      assert_converged name r)
    [
      ("uniform", Quick_ik.Uniform);
      ("log-spaced", Quick_ik.Log_spaced);
      ("extended", Quick_ik.Extended 2.0);
    ]

let test_quick_ik_beats_serial_on_batch () =
  let ps = problems ~seed:38 6 in
  let quick =
    Array.fold_left
      (fun acc p ->
        acc + (Quick_ik.solve ~speculations:64 ~config:(cfg ~max_iterations:10_000 ()) p).Ik.iterations)
      0 ps
  in
  let serial =
    Array.fold_left
      (fun acc p -> acc + (Jt_serial.solve ~config:(cfg ~max_iterations:10_000 ()) p).Ik.iterations)
      0 ps
  in
  Alcotest.(check bool) "large reduction (>= 5x)" true (quick * 5 < serial)

(* Regression pin: mean Quick-IK iteration counts on the paper's eval chains,
   measured on the current implementation (seed 2017, 40 random problems per
   chain, 64 speculations, cap 3000). The ±20% band leaves room for benign
   numeric drift while catching convergence regressions — and accidental
   speedup claims — in the solver core. *)
let test_quick_ik_iteration_pin () =
  let expected = [ (12, 86.65); (30, 82.95); (100, 52.17) ] in
  List.iter
    (fun (dof, pinned) ->
      let chain = Robots.eval_chain ~dof in
      let rng = Rng.create 2017 in
      let n = 40 in
      let total = ref 0 in
      for _ = 1 to n do
        let p = Ik.random_problem rng chain in
        let r = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
        Alcotest.(check bool)
          (Printf.sprintf "%d-DOF problem converges" dof)
          true
          (r.Ik.status = Ik.Converged);
        total := !total + r.Ik.iterations
      done;
      let mean = float_of_int !total /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%d-DOF mean iterations %.2f within ±20%% of %.2f" dof
           mean pinned)
        true
        (mean >= 0.8 *. pinned && mean <= 1.2 *. pinned))
    expected

let test_quick_ik_deterministic () =
  let p = (problems ~seed:39 1).(0) in
  let a = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
  let b = Quick_ik.solve ~speculations:64 ~config:(cfg ()) p in
  Alcotest.(check bool) "repeatable" true (a.Ik.theta = b.Ik.theta)

let test_quick_ik_random_chains () =
  (* across a fixed population of random chains, quick-ik converges on the
     vast majority of reachable targets (a few ill-conditioned chains may
     legitimately hit the cap) and never reports a false convergence *)
  let converged = ref 0 in
  let total = 30 in
  for seed = 0 to total - 1 do
    let rng = Rng.create seed in
    let dof = 3 + Rng.int rng 10 in
    let chain = Robots.random rng ~dof ~reach:2.0 () in
    let p = Ik.random_problem rng chain in
    let r = Quick_ik.solve ~speculations:32 p in
    if r.Ik.status = Ik.Converged then begin
      incr converged;
      Alcotest.(check bool) "no false convergence" true
        (Ik.error_of chain p.Ik.target r.Ik.theta < Ik.default_config.Ik.accuracy)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "high convergence rate (%d/%d)" !converged total)
    true
    (!converged * 10 >= total * 9)

(* ---- Pinv_svd / Dls / Sdls ---- *)

let test_pinv_converges_fast () =
  Array.iter
    (fun p ->
      let r = Pinv_svd.solve ~config:(cfg ()) p in
      assert_converged "pinv" r;
      assert_solves "pinv" p r;
      Alcotest.(check bool) "few iterations" true (r.Ik.iterations <= 60);
      Alcotest.(check bool) "sweeps recorded" true (r.Ik.svd_sweeps > 0))
    (problems ~seed:41 5)

let test_pinv_small_step_still_converges () =
  let p = (problems ~seed:42 1).(0) in
  let r = Pinv_svd.solve ~max_step:0.1 ~config:(cfg ()) p in
  assert_converged "pinv small step" r

let test_pinv_100dof () =
  let chain = Robots.eval_chain ~dof:100 in
  let p = (problems ~chain ~seed:43 1).(0) in
  let r = Pinv_svd.solve ~config:(cfg ()) p in
  assert_converged "pinv 100dof" r

let test_dls_converges () =
  Array.iter
    (fun p ->
      let r = Dls.solve ~config:(cfg ()) p in
      assert_converged "dls" r;
      assert_solves "dls" p r)
    (problems ~seed:44 5)

let test_dls_lambda_tradeoff () =
  (* heavier damping must not converge in fewer iterations on a batch *)
  let ps = problems ~seed:45 6 in
  let total lambda =
    Array.fold_left
      (fun acc p -> acc + (Dls.solve ~lambda ~config:(cfg ()) p).Ik.iterations)
      0 ps
  in
  Alcotest.(check bool) "lambda 0.05 <= lambda 1.0 iterations" true
    (total 0.05 <= total 1.0)

let test_sdls_converges () =
  Array.iter
    (fun p ->
      let r = Sdls.solve ~config:(cfg ()) p in
      assert_converged "sdls" r;
      assert_solves "sdls" p r)
    (problems ~seed:46 5)

let test_sdls_respects_gamma_max () =
  (* one iteration from a fixed start: ‖Δθ‖∞ ≤ γ_max *)
  let p = (problems ~seed:47 1).(0) in
  let gamma_max = 0.2 in
  let r =
    Sdls.solve ~gamma_max ~config:{ (cfg ()) with Ik.max_iterations = 1 } p
  in
  let dtheta = Vec.sub r.Ik.theta p.Ik.theta0 in
  Alcotest.(check bool) "step bounded" true (Vec.max_abs dtheta <= gamma_max +. 1e-9)

(* ---- Ccd ---- *)

let test_ccd_converges_planar () =
  let chain = Robots.planar ~dof:6 ~reach:3. () in
  Array.iter
    (fun p ->
      let r = Ccd.solve ~config:(cfg ~max_iterations:500 ()) p in
      assert_converged "ccd planar" r;
      assert_solves "ccd planar" p r)
    (problems ~chain ~seed:51 5)

let test_ccd_respects_limits () =
  let chain = Robots.snake ~dof:10 in
  let p = (problems ~chain ~seed:52 1).(0) in
  let r = Ccd.solve ~config:(cfg ~max_iterations:300 ()) p in
  Alcotest.(check bool) "final config inside limits" true
    (Chain.config_inside chain r.Ik.theta)

let test_ccd_prismatic () =
  (* CCD is a weak baseline on joint-limited chains (it gets trapped in
     local minima — the criticism the paper's related work raises), so on
     SCARA we require a majority of targets to converge and monotone
     improvement everywhere rather than full convergence. *)
  let chain = Robots.scara () in
  let ps = problems ~chain ~seed:53 5 in
  let converged = ref 0 in
  Array.iter
    (fun p ->
      let r = Ccd.solve ~config:(cfg ~max_iterations:500 ()) p in
      if r.Ik.status = Ik.Converged then incr converged;
      let initial = Ik.error_of p.Ik.chain p.Ik.target p.Ik.theta0 in
      Alcotest.(check bool) "no worse than start" true (r.Ik.error <= initial +. 1e-9))
    ps;
  Alcotest.(check bool) "majority converge" true (!converged >= 3)

let test_pose_target_of_mat4_roundtrip () =
  let chain = Robots.arm_7dof () in
  let rng = Rng.create 114 in
  let q = Target.random_config rng chain in
  let pose = Fk.pose chain q in
  let t = Pose.target_of_mat4 pose in
  Alcotest.(check bool) "position extracted" true
    (Vec3.approx_equal t.Pose.position (Mat4.position pose));
  Alcotest.(check (float 1e-9)) "orientation extracted" 0.
    (Rot.angle_between t.Pose.orientation (Mat4.rotation pose))

(* ---- Cost ---- *)

let test_cost_fk_consistency () =
  List.iter
    (fun dof ->
      Alcotest.(check (float 1e-9)) "fk_flops matches kinematics count"
        (float_of_int (Fk.flops_per_position dof))
        (Cost.fk_flops ~dof))
    [ 1; 12; 100 ]

let test_cost_totals () =
  let c = Cost.quick_ik ~dof:50 ~speculations:64 in
  Alcotest.(check (float 1e-9)) "total = serial + parallel"
    (c.Cost.serial_flops +. c.Cost.parallel_flops)
    (Cost.total c)

let test_cost_quick_ik_structure () =
  (* Quick-IK's serial prologue equals JT-Buss minus its update. *)
  let dof = 31 in
  let quick = Cost.quick_ik ~dof ~speculations:64 in
  let buss = Cost.jt_buss ~dof in
  Alcotest.(check (float 1e-9)) "serial parts related"
    (buss.Cost.serial_flops -. (2. *. float_of_int dof))
    quick.Cost.serial_flops

let test_cost_parallel_scales_with_specs () =
  let dof = 40 in
  let c32 = Cost.quick_ik ~dof ~speculations:32 in
  let c64 = Cost.quick_ik ~dof ~speculations:64 in
  Alcotest.(check (float 1e-6)) "parallel flops double"
    (2. *. c32.Cost.parallel_flops) c64.Cost.parallel_flops;
  Alcotest.(check (float 1e-9)) "serial unchanged" c32.Cost.serial_flops
    c64.Cost.serial_flops

let test_cost_monotone_in_dof () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "monotone" true (Cost.total (f 100) > Cost.total (f 12)))
    [
      (fun dof -> Cost.jt_serial ~dof);
      (fun dof -> Cost.jt_buss ~dof);
      (fun dof -> Cost.quick_ik ~dof ~speculations:64);
      (fun dof -> Cost.pinv_svd ~dof ~sweeps:6.);
      (fun dof -> Cost.sdls ~dof ~sweeps:6.);
      (fun dof -> Cost.dls ~dof);
      (fun dof -> Cost.ccd ~dof);
    ]

let test_cost_ccd_superlinear () =
  Alcotest.(check bool) "ccd is O(dof^2)" true
    (Cost.total (Cost.ccd ~dof:100) > 3. *. Cost.total (Cost.ccd ~dof:50))

let test_cost_jt_serial_cheaper_than_buss () =
  Alcotest.(check bool) "fixed alpha skips Eq. 8" true
    (Cost.total (Cost.jt_serial ~dof:64) < Cost.total (Cost.jt_buss ~dof:64))

let scaled_chain chain s =
  let links =
    Array.map
      (fun { Chain.name; joint; dh } ->
        { Chain.name; joint; dh = { dh with Dh.a = dh.Dh.a *. s; d = dh.Dh.d *. s } })
      (Chain.links chain)
  in
  Chain.make ~name:(Chain.name chain ^ "-scaled") links

let test_quick_ik_scale_invariance () =
  (* IK with the transpose family is dimensionally consistent: scaling
     every length (links, target, accuracy) by s leaves the joint-angle
     iterates unchanged.  With s a power of two the float arithmetic is
     exact, so the runs are bit-identical. *)
  let s = 4.0 in
  let chain = Robots.eval_chain ~dof:12 in
  let big = scaled_chain chain s in
  let rng = Rng.create 110 in
  for _ = 1 to 3 do
    let q_goal = Target.random_config rng chain in
    let theta0 = Target.random_config rng chain in
    let target = Fk.position chain q_goal in
    let big_target = Vec3.scale s target in
    let small =
      Quick_ik.solve ~speculations:32
        (Ik.problem ~chain ~target ~theta0)
    in
    let big_result =
      Quick_ik.solve ~speculations:32
        ~config:{ Ik.default_config with accuracy = Ik.default_config.Ik.accuracy *. s }
        (Ik.problem ~chain:big ~target:big_target ~theta0)
    in
    Alcotest.(check int) "same iterations" small.Ik.iterations big_result.Ik.iterations;
    Alcotest.(check bool) "identical joint angles" true
      (small.Ik.theta = big_result.Ik.theta)
  done

let test_linesearch_converges () =
  Array.iter
    (fun p ->
      let r = Jt_linesearch.solve ~config:(cfg ()) p in
      assert_converged "jt-linesearch" r;
      assert_solves "jt-linesearch" p r;
      Alcotest.(check int) "evaluations recorded" 20 r.Ik.speculations)
    (problems ~seed:111 4)

let test_linesearch_competitive_with_quick_ik () =
  (* an exact serial line search needs no more iterations than the
     64-candidate grid (it refines the same interval) on a batch *)
  let ps = problems ~seed:112 6 in
  let total solve = Array.fold_left (fun acc p -> acc + (solve p).Ik.iterations) 0 ps in
  let ls = total (fun p -> Jt_linesearch.solve ~config:(cfg ()) p) in
  let quick = total (fun p -> Quick_ik.solve ~speculations:64 ~config:(cfg ()) p) in
  Alcotest.(check bool)
    (Printf.sprintf "iterations comparable (ls %d vs quick %d)" ls quick)
    true
    (ls <= 2 * quick)

let test_linesearch_never_regresses () =
  let p = (problems ~seed:113 1).(0) in
  let errs = ref [] in
  ignore
    (Jt_linesearch.solve
       ~on_iteration:(fun ~iter:_ ~err -> errs := err :: !errs)
       ~config:(cfg ~max_iterations:200 ()) p);
  let oldest_first = List.rev !errs in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-12 && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "error never increases" true (non_increasing oldest_first)

let test_linesearch_invalid () =
  let p = (problems 1).(0) in
  Alcotest.(check bool) "bad budget" true
    (try
       ignore (Jt_linesearch.solve ~evaluations:1 p);
       false
     with Invalid_argument _ -> true)

(* ---- Pose (6-DOF task extension) ---- *)

let pose_problems ?(chain = Robots.arm_7dof ()) ?(seed = 71) n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Pose.random_problem rng chain)

let pose_cfg = { Pose.default_config with max_iterations = 5_000 }

let assert_pose_solved name (p : Pose.problem) (r : Pose.result) =
  Alcotest.(check bool)
    (Printf.sprintf "%s converged (pos %.4f rot %.4f)" name r.Pose.position_error
       r.Pose.orientation_error)
    true
    (r.Pose.status = Pose.Converged);
  (* independent FK verification of both error components *)
  let pose = Fk.pose p.Pose.chain r.Pose.theta in
  let pos_err = Vec3.dist p.Pose.target.Pose.position (Mat4.position pose) in
  let rot_err =
    Rot.angle_between p.Pose.target.Pose.orientation (Mat4.rotation pose)
  in
  Alcotest.(check bool) (name ^ ": FK position confirms") true
    (pos_err < pose_cfg.Pose.position_accuracy);
  Alcotest.(check bool) (name ^ ": FK orientation confirms") true
    (rot_err < pose_cfg.Pose.orientation_accuracy)

let test_pose_twist_zero_at_solution () =
  let chain = Robots.arm_7dof () in
  let rng = Rng.create 72 in
  let q = Target.random_config rng chain in
  let target = Pose.target_of_mat4 (Fk.pose chain q) in
  let e = Pose.error_twist ~rotation_weight:0.5 chain target q in
  Alcotest.(check bool) "zero twist" true (Vec.norm e < 1e-9)

let test_pose_twist_pure_translation () =
  let chain = Robots.arm_7dof () in
  let rng = Rng.create 73 in
  let q = Target.random_config rng chain in
  let pose = Fk.pose chain q in
  let offset = Vec3.make 0.1 (-0.2) 0.05 in
  let target =
    { Pose.position = Vec3.add (Mat4.position pose) offset;
      orientation = Mat4.rotation pose }
  in
  let e = Pose.error_twist ~rotation_weight:0.5 chain target q in
  Alcotest.(check bool) "translation part" true
    (Vec3.approx_equal ~tol:1e-9 (Vec3.make e.(0) e.(1) e.(2)) offset);
  Alcotest.(check bool) "no rotation part" true
    (Float.abs e.(3) < 1e-9 && Float.abs e.(4) < 1e-9 && Float.abs e.(5) < 1e-9)

let test_pose_dls_converges () =
  Array.iter
    (fun p -> assert_pose_solved "pose-dls" p (Pose.solve_dls ~config:pose_cfg p))
    (pose_problems 5)

let test_pose_quick_converges () =
  Array.iter
    (fun p ->
      assert_pose_solved "pose-quick" p
        (Pose.solve_quick ~speculations:64 ~config:pose_cfg p))
    (pose_problems ~seed:74 4)

let test_pose_jt_progresses () =
  (* pose-JT is slow (same reason as position-JT); require progress and
     convergence on at least some problems rather than all *)
  let ps = pose_problems ~seed:75 4 in
  let converged = ref 0 in
  Array.iter
    (fun p ->
      let r = Pose.solve_jt ~config:pose_cfg p in
      if r.Pose.status = Pose.Converged then incr converged)
    ps;
  Alcotest.(check bool) "at least half converge" true (!converged * 2 >= Array.length ps)

let test_pose_quick_beats_jt () =
  let ps = pose_problems ~seed:76 4 in
  let total solve = Array.fold_left (fun acc p -> acc + (solve p).Pose.iterations) 0 ps in
  let quick = total (fun p -> Pose.solve_quick ~speculations:64 ~config:pose_cfg p) in
  let jt = total (fun p -> Pose.solve_jt ~config:pose_cfg p) in
  Alcotest.(check bool) "speculation helps on the pose task" true (quick <= jt)

let test_pose_on_high_dof () =
  let chain = Robots.eval_chain ~dof:50 in
  let p = (pose_problems ~chain ~seed:77 1).(0) in
  let r = Pose.solve_dls ~config:pose_cfg p in
  assert_pose_solved "pose-dls-50dof" p r

let test_pose_invalid_speculations () =
  let p = (pose_problems 1).(0) in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Pose.solve_quick ~speculations:0 p);
       false
     with Invalid_argument _ -> true)

(* ---- Nullspace ---- *)

let test_nullspace_converges () =
  let chain = Robots.snake ~dof:20 in
  Array.iter
    (fun p ->
      let r =
        Nullspace.solve ~objective:Nullspace.Joint_centering ~config:(cfg ()) p
      in
      assert_converged "nullspace" r;
      assert_solves "nullspace" p r)
    (problems ~chain ~seed:81 4)

let test_nullspace_improves_comfort () =
  (* joint-centering must yield a more centered final posture than plain
     DLS on the same problems, at equal task convergence *)
  let chain = Robots.snake ~dof:20 in
  let ps = problems ~chain ~seed:82 6 in
  let total solve =
    Array.fold_left (fun acc p -> acc +. Nullspace.comfort chain (solve p).Ik.theta) 0. ps
  in
  let plain = total (fun p -> Dls.solve ~config:(cfg ()) p) in
  let centered =
    total (fun p ->
        Nullspace.solve ~objective:Nullspace.Joint_centering ~config:(cfg ()) p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "comfort improved (%.3f -> %.3f)" plain centered)
    true (centered < plain)

let test_nullspace_reference_objective () =
  let chain = Robots.snake ~dof:20 in
  let p = (problems ~chain ~seed:83 1).(0) in
  let reference = Array.make 20 0.1 in
  let r =
    Nullspace.solve ~objective:(Nullspace.Reference reference) ~config:(cfg ()) p
  in
  assert_converged "nullspace-reference" r

let test_nullspace_custom_objective () =
  let chain = Robots.snake ~dof:20 in
  let p = (problems ~chain ~seed:84 1).(0) in
  let r =
    Nullspace.solve
      ~objective:(Nullspace.Custom (fun theta -> Vec.scale (-0.5) theta))
      ~config:(cfg ()) p
  in
  assert_converged "nullspace-custom" r

let test_nullspace_gradient_shapes () =
  let chain = Robots.snake ~dof:8 in
  let theta = Array.make 8 0.5 in
  let z = Nullspace.objective_gradient Nullspace.Joint_centering chain theta in
  Alcotest.(check int) "dof-sized" 8 (Vec.dim z);
  (* snake joints are centered at 0, so the gradient points back toward 0 *)
  Array.iter (fun zi -> Alcotest.(check (float 1e-9)) "toward center" (-0.5) zi) z

let test_comfort_bounds () =
  let chain = Robots.snake ~dof:8 in
  Alcotest.(check (float 1e-9)) "centered = 0" 0. (Nullspace.comfort chain (Array.make 8 0.));
  let at_limit = Array.make 8 (120. *. Float.pi /. 180.) in
  Alcotest.(check (float 1e-9)) "at limits = 1" 1. (Nullspace.comfort chain at_limit)

let test_nullspace_optimize_holds_task () =
  let chain = Robots.snake ~dof:16 in
  let rng = Rng.create 85 in
  let p = (problems ~chain ~seed:85 1).(0) in
  ignore rng;
  let solved = Dls.solve ~config:(cfg ()) p in
  let improved =
    Nullspace.optimize ~iterations:150 ~objective:Nullspace.Joint_centering chain
      ~target:p.Ik.target ~theta:solved.Ik.theta
  in
  (* the task stays solved... *)
  Alcotest.(check bool) "task held" true
    (Ik.error_of chain p.Ik.target improved < 1.5e-2);
  (* ...and the posture objective improves *)
  Alcotest.(check bool) "comfort improved" true
    (Nullspace.comfort chain improved < Nullspace.comfort chain solved.Ik.theta)

let test_nullspace_optimize_zero_iterations () =
  let chain = Robots.snake ~dof:8 in
  let theta = Array.make 8 0.4 in
  let out =
    Nullspace.optimize ~iterations:0 ~objective:Nullspace.Joint_centering chain
      ~target:Dadu_linalg.Vec3.zero ~theta
  in
  Alcotest.(check bool) "unchanged" true (out = theta);
  Alcotest.(check bool) "fresh vector" true (out != theta)

(* ---- Restarts ---- *)

let test_restarts_first_try () =
  let rng = Rng.create 91 in
  let p = (problems ~seed:91 1).(0) in
  let o = Restarts.solve rng ~solver:(fun p -> Quick_ik.solve ~speculations:32 p) p in
  Alcotest.(check int) "one attempt" 1 o.Restarts.attempts;
  Alcotest.(check bool) "converged" true (o.Restarts.result.Ik.status = Ik.Converged)

let test_restarts_recovers () =
  (* a solver that fails unless started at a magic configuration; restarts
     keep drawing new starts until one is close enough *)
  let chain = Robots.eval_chain ~dof:4 in
  let rng = Rng.create 92 in
  let p = (problems ~chain ~seed:92 1).(0) in
  let calls = ref 0 in
  let flaky (problem : Ik.problem) =
    incr calls;
    if !calls < 3 then
      { (Quick_ik.solve ~speculations:8 problem) with
        Ik.status = Ik.Max_iterations; error = 1.0 }
    else Quick_ik.solve ~speculations:8 problem
  in
  let o = Restarts.solve rng ~max_attempts:5 ~solver:flaky p in
  Alcotest.(check int) "three attempts" 3 o.Restarts.attempts;
  Alcotest.(check bool) "eventually converged" true
    (o.Restarts.result.Ik.status = Ik.Converged)

let test_restarts_exhausted_returns_best () =
  let chain = Robots.arm_6dof () in
  let rng = Rng.create 93 in
  let target = Target.unreachable rng chain in
  let p = Ik.problem ~chain ~target ~theta0:(Target.random_config rng chain) in
  let solver p =
    Quick_ik.solve ~speculations:8 ~config:{ (cfg ()) with Ik.max_iterations = 50 } p
  in
  let o = Restarts.solve rng ~max_attempts:3 ~solver p in
  Alcotest.(check int) "all attempts used" 3 o.Restarts.attempts;
  Alcotest.(check bool) "did not converge" true
    (o.Restarts.result.Ik.status <> Ik.Converged);
  Alcotest.(check bool) "iterations accumulated" true (o.Restarts.total_iterations = 150)

let test_restarts_invalid () =
  let rng = Rng.create 94 in
  let p = (problems 1).(0) in
  Alcotest.(check bool) "max_attempts 0 rejected" true
    (try
       ignore (Restarts.solve rng ~max_attempts:0 ~solver:(fun p -> Dls.solve p) p);
       false
     with Invalid_argument _ -> true)

(* ---- Rmrc ---- *)

let test_rmrc_static_target_settles () =
  let chain = Robots.arm_7dof () in
  let rng = Rng.create 105 in
  let goal = Target.reachable rng chain in
  let theta0 = Target.random_config rng chain in
  let trace =
    Rmrc.follow ~chain ~theta0 ~duration:2.0 (fun _ -> goal)
  in
  Alcotest.(check bool)
    (Printf.sprintf "settles (final %.4f)" trace.Rmrc.final_error)
    true
    (trace.Rmrc.final_error < 1e-2)

let test_rmrc_tracks_moving_target () =
  let chain = Robots.arm_7dof () in
  (* slow circular target well inside the workspace *)
  let center = Vec3.make 0.45 0. 0.35 in
  let target t =
    Vec3.add center
      (Vec3.make (0.1 *. cos (0.5 *. t)) (0.1 *. sin (0.5 *. t)) 0.)
  in
  let trace =
    Rmrc.follow ~chain ~theta0:(Array.make 7 0.3) ~duration:10.0 target
  in
  Alcotest.(check bool)
    (Printf.sprintf "tracking error settles (%.4f m)" trace.Rmrc.max_error_after_settle)
    true
    (trace.Rmrc.max_error_after_settle < 2e-2)

let test_rmrc_sample_structure () =
  let chain = Robots.arm_7dof () in
  let goal = Fk.position chain (Array.make 7 0.2) in
  let trace =
    Rmrc.follow ~dt:0.1 ~chain ~theta0:(Array.make 7 0.25) ~duration:1.0
      (fun _ -> goal)
  in
  Alcotest.(check int) "tick count" 11 (Array.length trace.Rmrc.samples);
  Array.iteri
    (fun i s ->
      Alcotest.(check (float 1e-9)) "time grid" (0.1 *. float_of_int i) s.Rmrc.time)
    trace.Rmrc.samples

let test_rmrc_rate_limit_respected () =
  let chain = Robots.arm_7dof () in
  let goal = Target.reachable (Rng.create 106) chain in
  let limit = 0.5 in
  let dt = 0.05 in
  let trace =
    Rmrc.follow ~dt ~joint_rate_limit:limit ~chain ~theta0:(Array.make 7 0.9)
      ~duration:1.0 (fun _ -> goal)
  in
  let ok = ref true in
  for i = 1 to Array.length trace.Rmrc.samples - 1 do
    let prev = trace.Rmrc.samples.(i - 1).Rmrc.theta in
    let cur = trace.Rmrc.samples.(i).Rmrc.theta in
    Array.iteri
      (fun j q ->
        if Float.abs (q -. prev.(j)) > (limit *. dt) +. 1e-9 then ok := false)
      cur
  done;
  Alcotest.(check bool) "per-tick joint motion bounded" true !ok

let test_rmrc_invalid () =
  let chain = Robots.arm_7dof () in
  Alcotest.(check bool) "bad dt" true
    (try
       ignore (Rmrc.follow ~dt:0. ~chain ~theta0:(Array.make 7 0.) ~duration:1. (fun _ -> Vec3.zero));
       false
     with Invalid_argument _ -> true)

(* ---- on_iteration instrumentation ---- *)

let test_on_iteration_observes_descent () =
  let p = (problems ~seed:107 1).(0) in
  let errs = ref [] in
  let r =
    Quick_ik.solve ~speculations:32
      ~on_iteration:(fun ~iter:_ ~err -> errs := err :: !errs)
      ~config:(cfg ()) p
  in
  let errs = List.rev !errs in
  Alcotest.(check int) "one observation per iteration + final" (r.Ik.iterations + 1)
    (List.length errs);
  Alcotest.(check (float 1e-12)) "last observation = final error" r.Ik.error
    (List.nth errs (List.length errs - 1));
  Alcotest.(check bool) "first observation is the initial error" true
    (List.hd errs >= r.Ik.error)

(* ---- Multitask ---- *)

let test_multitask_end_effector_only_matches_dls () =
  (* a single task at the end effector is ordinary position IK *)
  let chain = Robots.eval_chain ~dof:12 in
  let rng = Rng.create 98 in
  let target = Target.reachable rng chain in
  let theta0 = Target.random_config rng chain in
  let mp =
    Multitask.problem ~chain
      ~tasks:[ { Multitask.link = 12; target; weight = 1.0 } ]
      ~theta0
  in
  let r = Multitask.solve mp in
  Alcotest.(check bool) "converged" true r.Multitask.converged;
  let err = Vec3.dist target (Fk.position chain r.Multitask.theta) in
  Alcotest.(check bool) "FK confirms" true (err < 1e-2)

let test_multitask_two_points () =
  (* tip and midpoint simultaneously: sample both from one feasible
     configuration so a common solution exists *)
  let chain = Robots.snake ~dof:20 in
  let rng = Rng.create 99 in
  let q_goal = Target.random_config rng chain in
  let frames = Fk.frames chain q_goal in
  let tasks =
    [
      { Multitask.link = 20; target = Mat4.position frames.(20); weight = 1.0 };
      { Multitask.link = 10; target = Mat4.position frames.(10); weight = 1.0 };
    ]
  in
  let mp = Multitask.problem ~chain ~tasks ~theta0:(Target.random_config rng chain) in
  let r = Multitask.solve mp in
  Alcotest.(check bool)
    (Printf.sprintf "both tasks converge (errors %s)"
       (String.concat ", " (List.map string_of_float r.Multitask.errors)))
    true r.Multitask.converged;
  List.iter2
    (fun { Multitask.link; target; _ } _ ->
      let p = Multitask.point_position chain r.Multitask.theta ~link in
      Alcotest.(check bool) "FK confirms task" true (Vec3.dist target p < 1e-2))
    tasks r.Multitask.errors

let test_multitask_distal_columns_zero () =
  let chain = Robots.snake ~dof:10 in
  let rng = Rng.create 100 in
  let theta = Target.random_config rng chain in
  let tasks = [ { Multitask.link = 4; target = Vec3.zero; weight = 1.0 } ] in
  let j = Multitask.stacked_jacobian chain theta ~tasks in
  for col = 4 to 9 do
    for row = 0 to 2 do
      Alcotest.(check (float 0.)) "distal joint has no effect" 0. (Mat.get j row col)
    done
  done

let test_multitask_weights_scale_rows () =
  let chain = Robots.snake ~dof:8 in
  let rng = Rng.create 101 in
  let theta = Target.random_config rng chain in
  let t1 = [ { Multitask.link = 8; target = Vec3.zero; weight = 1.0 } ] in
  let t2 = [ { Multitask.link = 8; target = Vec3.zero; weight = 2.5 } ] in
  let j1 = Multitask.stacked_jacobian chain theta ~tasks:t1 in
  let j2 = Multitask.stacked_jacobian chain theta ~tasks:t2 in
  Alcotest.(check bool) "rows scaled by weight" true
    (Mat.approx_equal ~tol:1e-12 (Mat.scale 2.5 j1) j2)

let test_multitask_validation () =
  let chain = Robots.snake ~dof:8 in
  let theta0 = Array.make 8 0. in
  let bad tasks =
    try
      ignore (Multitask.problem ~chain ~tasks ~theta0);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty tasks" true (bad []);
  Alcotest.(check bool) "link 0" true
    (bad [ { Multitask.link = 0; target = Vec3.zero; weight = 1. } ]);
  Alcotest.(check bool) "link > dof" true
    (bad [ { Multitask.link = 9; target = Vec3.zero; weight = 1. } ]);
  Alcotest.(check bool) "bad weight" true
    (bad [ { Multitask.link = 4; target = Vec3.zero; weight = 0. } ])

let test_multitask_conflicting_tasks_balance () =
  (* infeasible pair: the midpoint and tip cannot both sit at far-apart
     points beyond the remaining reach; the weighted solve must cap
     without diverging *)
  let chain = Robots.snake ~dof:10 in
  let theta0 = Array.make 10 0.1 in
  let tasks =
    [
      { Multitask.link = 10; target = Vec3.make 0.9 0. 0.; weight = 1.0 };
      { Multitask.link = 5; target = Vec3.make (-0.9) 0. 0.; weight = 1.0 };
    ]
  in
  let mp = Multitask.problem ~chain ~tasks ~theta0 in
  let r = Multitask.solve ~max_iterations:300 mp in
  Alcotest.(check bool) "does not converge" false r.Multitask.converged;
  List.iter
    (fun e -> Alcotest.(check bool) "errors finite" true (Float.is_finite e))
    r.Multitask.errors

(* ---- Batch / Servo ---- *)

let test_batch_sequential () =
  let ps = problems ~seed:95 6 in
  let s = Batch.solve ~solver:(fun p -> Quick_ik.solve ~speculations:16 p) ps in
  Alcotest.(check int) "all results" 6 (Array.length s.Batch.results);
  Alcotest.(check int) "all converge" 6 s.Batch.converged;
  Alcotest.(check bool) "mean iterations positive" true (s.Batch.mean_iterations > 0.)

let test_batch_parallel_matches_sequential () =
  let pool = Dadu_util.Domain_pool.create 4 in
  Fun.protect ~finally:(fun () -> Dadu_util.Domain_pool.shutdown pool) @@ fun () ->
  let ps = problems ~seed:96 8 in
  let solver p = Dls.solve p in
  let seq = Batch.solve ~solver ps in
  let par = Batch.solve ~pool ~solver ps in
  Array.iteri
    (fun i (r : Ik.result) ->
      Alcotest.(check bool) (Printf.sprintf "problem %d identical" i) true
        (r.Ik.theta = par.Batch.results.(i).Ik.theta))
    seq.Batch.results

let test_batch_empty () =
  let s = Batch.solve ~solver:(fun p -> Dls.solve p) [||] in
  Alcotest.(check int) "no results" 0 (Array.length s.Batch.results);
  Alcotest.(check (float 0.)) "zero mean" 0. s.Batch.mean_iterations

let test_servo_tracks_circle () =
  let chain = Robots.arm_7dof () in
  let path =
    Traj.circle
      ~center:(Vec3.make 0.45 0. 0.35)
      ~radius:0.1 ~normal:(Vec3.make 0. 1. 0.) ~samples:16
  in
  let report =
    Servo.track
      ~solver:(fun p -> Dls.solve ~config:(cfg ()) p)
      ~chain ~theta0:(Array.make 7 0.3) path
  in
  Alcotest.(check int) "all waypoints converge" 16 report.Servo.converged;
  Alcotest.(check bool) "warm starts cheap" true (report.Servo.warm_mean_iterations < 50.);
  Alcotest.(check bool) "max error below accuracy" true
    (report.Servo.max_error < Ik.default_config.Ik.accuracy)

let test_servo_warm_cheaper_than_cold () =
  let chain = Robots.eval_chain ~dof:25 in
  let rng = Rng.create 97 in
  let anchor = Fk.position chain (Target.random_config rng chain) in
  let path =
    Traj.line ~from:anchor ~to_:(Vec3.add anchor (Vec3.make 0.1 0.05 (-0.05))) ~samples:12
  in
  let report =
    Servo.track
      ~solver:(fun p -> Quick_ik.solve ~speculations:32 ~config:(cfg ()) p)
      ~chain ~theta0:(Target.random_config rng chain) path
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm (%.1f) cheaper than cold (%d)"
       report.Servo.warm_mean_iterations report.Servo.cold_start_iterations)
    true
    (report.Servo.warm_mean_iterations < float_of_int report.Servo.cold_start_iterations)

let test_servo_empty_path () =
  let chain = Robots.arm_7dof () in
  Alcotest.(check bool) "empty path rejected" true
    (try
       ignore (Servo.track ~solver:(fun p -> Dls.solve p) ~chain
                 ~theta0:(Array.make 7 0.) [||]);
       false
     with Invalid_argument _ -> true)

let test_servo_waypoint_order () =
  let chain = Robots.arm_7dof () in
  let path =
    Traj.line ~from:(Vec3.make 0.4 0. 0.3) ~to_:(Vec3.make 0.4 0.2 0.3) ~samples:5
  in
  let report =
    Servo.track ~solver:(fun p -> Dls.solve p) ~chain ~theta0:(Array.make 7 0.2) path
  in
  Array.iteri
    (fun i (w : Servo.waypoint) ->
      Alcotest.(check int) "index order" i w.Servo.index;
      Alcotest.(check bool) "target preserved" true
        (Vec3.approx_equal w.Servo.target path.(i)))
    report.Servo.waypoints

(* ---- Cross-solver behaviour ---- *)

let all_solvers =
  [
    ("jt-buss", fun config p -> Jt_buss.solve ~config p);
    ("quick-ik", fun config p -> Quick_ik.solve ~speculations:32 ~config p);
    ("pinv", fun config p -> Pinv_svd.solve ~config p);
    ("dls", fun config p -> Dls.solve ~config p);
    ("sdls", fun config p -> Sdls.solve ~config p);
  ]

let test_all_solvers_same_problem () =
  let p = (problems ~seed:61 1).(0) in
  List.iter
    (fun (name, solve) ->
      let r = solve (cfg ()) p in
      assert_converged name r;
      assert_solves name p r)
    all_solvers

let test_all_solvers_named_robots () =
  List.iter
    (fun chain ->
      let p = (problems ~chain ~seed:62 1).(0) in
      List.iter
        (fun (name, solve) ->
          let r = solve (cfg ()) p in
          assert_converged (Chain.name chain ^ "/" ^ name) r)
        all_solvers)
    [ Robots.arm_6dof (); Robots.arm_7dof (); Robots.snake ~dof:20 ]

let test_unreachable_target_caps () =
  let chain = Robots.arm_6dof () in
  let rng = Rng.create 63 in
  let target = Target.unreachable rng chain in
  let theta0 = Target.random_config rng chain in
  let p = Ik.problem ~chain ~target ~theta0 in
  let config = { Ik.default_config with max_iterations = 200 } in
  let r = Quick_ik.solve ~speculations:16 ~config p in
  Alcotest.(check bool) "does not converge" true (r.Ik.status = Ik.Max_iterations);
  Alcotest.(check bool) "error stays above accuracy" true (r.Ik.error > 1e-2)

let test_solver_results_deterministic =
  QCheck.Test.make ~name:"every solver is deterministic" ~count:20
    QCheck.(int_range 0 10_000) (fun seed ->
      let p = (problems ~seed 1).(0) in
      List.for_all
        (fun (_, solve) ->
          let a = solve (cfg ~max_iterations:100 ()) p in
          let b = solve (cfg ~max_iterations:100 ()) p in
          a.Ik.theta = b.Ik.theta && a.Ik.iterations = b.Ik.iterations)
        all_solvers)

(* ---- workspace-identity trace pins ----

   Reusing a solve workspace must be invisible: a solver driven on a
   workspace already dirtied by a different problem must produce the exact
   iteration trace — every (iter, err) pair, compared as raw float bits —
   and the exact solution bits of a run on a fresh workspace.  This is the
   property that makes per-domain workspace pooling in the service layer
   safe.  Pinned on the fixed-seed 12/30/100-DOF grid. *)

let trace_of ~workspace solver problem =
  let trace = ref [] in
  let on_iteration ~iter ~err =
    trace := (iter, Int64.bits_of_float err) :: !trace
  in
  let result = solver ~on_iteration ~workspace problem in
  (List.rev !trace, Array.map Int64.bits_of_float result.Ik.theta)

let check_workspace_identity name solver ~dof =
  let chain = Robots.eval_chain ~dof in
  let rng = Rng.create (900 + dof) in
  let decoy = Ik.random_problem rng chain in
  let problem = Ik.random_problem rng chain in
  let fresh_trace, fresh_theta =
    trace_of ~workspace:(Workspace.create ~dof) solver problem
  in
  let reused = Workspace.create ~dof in
  ignore (solver ~on_iteration:(fun ~iter:_ ~err:_ -> ()) ~workspace:reused decoy);
  let reused_trace, reused_theta = trace_of ~workspace:reused solver problem in
  if List.length fresh_trace = 0 then
    Alcotest.failf "%s (%d DOF): empty iteration trace" name dof;
  if not (List.equal (fun (i, b) (i', b') -> i = i' && Int64.equal b b')
            fresh_trace reused_trace)
  then Alcotest.failf "%s (%d DOF): iteration traces diverge" name dof;
  Array.iteri
    (fun i b ->
      if not (Int64.equal b reused_theta.(i)) then
        Alcotest.failf "%s (%d DOF): theta component %d differs" name dof i)
    fresh_theta

let pin_config = { Ik.default_config with max_iterations = 120 }

let workspace_identity_case name solver =
  List.map
    (fun dof ->
      Alcotest.test_case
        (Printf.sprintf "%s, %d DOF" name dof)
        (if dof = 100 then `Slow else `Quick)
        (fun () -> check_workspace_identity name solver ~dof))
    [ 12; 30; 100 ]

let workspace_identity_tests =
  List.concat
    [
      workspace_identity_case "quick_ik"
        (fun ~on_iteration ~workspace p ->
          Quick_ik.solve ~speculations:16 ~on_iteration ~workspace
            ~config:pin_config p);
      workspace_identity_case "jt_serial"
        (fun ~on_iteration ~workspace p ->
          Jt_serial.solve ~on_iteration ~workspace ~config:pin_config p);
      workspace_identity_case "jt_buss"
        (fun ~on_iteration ~workspace p ->
          Jt_buss.solve ~on_iteration ~workspace ~config:pin_config p);
      workspace_identity_case "jt_linesearch"
        (fun ~on_iteration ~workspace p ->
          Jt_linesearch.solve ~on_iteration ~workspace ~config:pin_config p);
      workspace_identity_case "dls"
        (fun ~on_iteration ~workspace p ->
          Dls.solve ~on_iteration ~workspace ~config:pin_config p);
      workspace_identity_case "sdls"
        (fun ~on_iteration ~workspace p ->
          Sdls.solve ~on_iteration ~workspace ~config:pin_config p);
    ]

(* The per-domain workspace pool's accounting: the first request for a
   DOF builds, every later one on the same domain reuses the same
   workspace (physically), and the process-global counters see both. *)
let test_workspace_local_stats () =
  let s0 = Workspace.local_stats () in
  let c0 = Workspace.local_count () in
  let w1 = Workspace.local ~dof:97 in
  let s1 = Workspace.local_stats () in
  let w2 = Workspace.local ~dof:97 in
  let s2 = Workspace.local_stats () in
  Alcotest.(check bool) "second lookup returns the same workspace" true (w1 == w2);
  Alcotest.(check int) "first lookup creates" (s0.Workspace.created + 1)
    s1.Workspace.created;
  Alcotest.(check int) "second lookup creates nothing" s1.Workspace.created
    s2.Workspace.created;
  Alcotest.(check int) "second lookup reuses" (s1.Workspace.reused + 1)
    s2.Workspace.reused;
  Alcotest.(check int) "domain cache grew by one" (c0 + 1) (Workspace.local_count ())

(* ---- divergence guard ---- *)

let guarded g = { Ik.default_config with guard = Some g }

(* A step that poisons the configuration: the guarded driver must abort
   with [Diverged] at the next iteration top, the unguarded driver must
   keep spinning to the cap (NaN error compares false against every
   threshold). *)
let nan_step ws =
  Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
  ws.Workspace.theta_next.(0) <- Float.nan;
  0

let nan_problem () =
  let chain = Robots.planar ~dof:3 ~reach:3. () in
  Ik.problem ~chain ~target:(Dadu_linalg.Vec3.make 2.5 0.5 0.)
    ~theta0:(Vec.create 3)

let test_guard_catches_nan () =
  let p = nan_problem () in
  let r =
    Loop.run
      ~config:{ (guarded Ik.default_guard) with max_iterations = 50 }
      ~workspace:(Workspace.create ~dof:3) ~speculations:1 ~step:nan_step p
  in
  Alcotest.(check bool) "diverged" true (r.Ik.status = Ik.Diverged);
  Alcotest.(check bool) "few iterations" true (r.Ik.iterations <= 2)

let test_unguarded_nan_spins_to_cap () =
  let p = nan_problem () in
  let r =
    Loop.run
      ~config:{ Ik.default_config with max_iterations = 50 }
      ~workspace:(Workspace.create ~dof:3) ~speculations:1 ~step:nan_step p
  in
  Alcotest.(check bool) "hits the cap" true (r.Ik.status = Ik.Max_iterations);
  Alcotest.(check int) "all 50 iterations" 50 r.Ik.iterations

let test_guard_catches_explosion () =
  (* start almost on target (tiny initial error), then run away: the
     error explodes past [factor × max initial accuracy] and stays
     there, so after [patience] consecutive iterations the guard trips *)
  let chain = Robots.planar ~dof:2 ~reach:2. () in
  let theta0 = Vec.create 2 in
  let target = Fk.position chain (Vec.of_list [ 0.02; 0. ]) in
  let p = Ik.problem ~chain ~target ~theta0 in
  let config =
    {
      (guarded { Ik.explode_factor = 3.; explode_patience = 4 }) with
      accuracy = 1e-6;
      max_iterations = 200;
    }
  in
  let runaway ws =
    Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
    ws.Workspace.theta_next.(0) <- ws.Workspace.theta.(0) +. 1.5;
    1
  in
  let r =
    Loop.run ~config ~workspace:(Workspace.create ~dof:2) ~speculations:1
      ~step:runaway p
  in
  Alcotest.(check bool) "diverged" true (r.Ik.status = Ik.Diverged);
  Alcotest.(check bool) "well before the cap" true (r.Ik.iterations < 50)

let test_guard_patience_tolerates_transients () =
  (* one bad iteration then straight back: patience 3 must not trip *)
  let chain = Robots.planar ~dof:2 ~reach:2. () in
  let theta0 = Vec.create 2 in
  let target = Fk.position chain (Vec.of_list [ 0.02; 0. ]) in
  let p = Ik.problem ~chain ~target ~theta0 in
  let config =
    {
      (guarded { Ik.explode_factor = 3.; explode_patience = 3 }) with
      accuracy = 1e-6;
      max_iterations = 8;
    }
  in
  let spike ws =
    Vec.blit ws.Workspace.theta ws.Workspace.theta_next;
    (* iteration 0 jumps far away, every later one returns home *)
    ws.Workspace.theta_next.(0) <- (if ws.Workspace.iter = 0 then 2. else 0.);
    0
  in
  let r =
    Loop.run ~config ~workspace:(Workspace.create ~dof:2) ~speculations:1
      ~step:spike p
  in
  Alcotest.(check bool) "transient not punished" true
    (r.Ik.status <> Ik.Diverged)

(* The guard must be invisible on healthy runs: same problem, same
   solver, guard on vs. off — bit-identical results. *)
let test_guard_invisible_when_healthy () =
  let p = (problems ~seed:71 1).(0) in
  List.iter
    (fun (name, solve) ->
      let off = solve (cfg ()) p in
      let on = solve { (cfg ()) with Ik.guard = Some Ik.default_guard } p in
      Alcotest.(check bool)
        (name ^ ": guarded run bit-identical") true
        (off = on))
    all_solvers

(* ---- degenerate poses ---- *)

let nine_solvers =
  [
    ("quick-ik", fun config p -> Quick_ik.solve ~speculations:16 ~config p);
    ("jt-serial", fun config p -> Jt_serial.solve ~config p);
    ("jt-buss", fun config p -> Jt_buss.solve ~config p);
    ("jt-linesearch", fun config p -> Jt_linesearch.solve ~config p);
    ("pinv", fun config p -> Pinv_svd.solve ~config p);
    ("dls", fun config p -> Dls.solve ~config p);
    ("sdls", fun config p -> Sdls.solve ~config p);
    ("ccd", fun config p -> Ccd.solve ~config p);
    ( "nullspace",
      fun config p ->
        Nullspace.solve ~objective:Nullspace.Joint_centering ~config p );
  ]

(* Every solver must survive pathological geometry without raising, and
   must come back with a finite configuration and an honest status —
   guarded and unguarded alike. *)
let degenerate_cases () =
  let origin = Dadu_linalg.Vec3.make 0. 0. 0. in
  [
    (* target coincident with the base: Jacobian rows vanish as the
       chain folds onto itself *)
    ( "target-at-base",
      Ik.problem
        ~chain:(Robots.planar ~dof:4 ~reach:2. ())
        ~target:origin
        ~theta0:(Vec.of_list [ 0.3; -0.2; 0.5; 0.1 ]) );
    (* zero-length links: FK collapses to the base, every error is the
       target distance, every direction is null *)
    ( "zero-length-chain",
      Ik.problem
        ~chain:(Robots.planar ~dof:3 ~reach:0. ())
        ~target:(Dadu_linalg.Vec3.make 0.5 0.5 0.)
        ~theta0:(Vec.of_list [ 0.1; 0.2; 0.3 ]) );
    ( "zero-length-chain-own-base",
      Ik.problem
        ~chain:(Robots.planar ~dof:3 ~reach:0. ())
        ~target:origin
        ~theta0:(Vec.create 3) );
    (* fully stretched at the workspace boundary: the classic boundary
       singularity (J·Jᵀ loses rank along the chain axis) *)
    ( "boundary-singular",
      Ik.problem
        ~chain:(Robots.planar ~dof:5 ~reach:2.5 ())
        ~target:(Dadu_linalg.Vec3.make 2.5 0. 0.)
        ~theta0:(Vec.create 5) );
  ]

let theta_finite theta = Array.for_all Float.is_finite theta

let test_degenerate_poses () =
  let config = { (cfg ~max_iterations:300 ()) with Ik.accuracy = 1e-3 } in
  let configs =
    [ ("unguarded", config); ("guarded", { config with Ik.guard = Some Ik.default_guard }) ]
  in
  List.iter
    (fun (case, p) ->
      List.iter
        (fun (mode, config) ->
          List.iter
            (fun (name, solve) ->
              let label = case ^ "/" ^ mode ^ "/" ^ name in
              match solve config p with
              | r ->
                Alcotest.(check bool) (label ^ ": finite theta") true
                  (theta_finite r.Ik.theta);
                (match r.Ik.status with
                | Ik.Converged ->
                  Alcotest.(check bool)
                    (label ^ ": converged honestly") true
                    (Ik.error_of p.Ik.chain p.Ik.target r.Ik.theta
                    <= config.Ik.accuracy +. 1e-9)
                | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> ())
              | exception e ->
                Alcotest.failf "%s raised %s" label (Printexc.to_string e))
            nine_solvers)
        configs)
    (degenerate_cases ())

let () =
  Alcotest.run "dadu_core"
    [
      ("workspace-identity", workspace_identity_tests);
      ( "guard",
        [
          Alcotest.test_case "catches NaN" `Quick test_guard_catches_nan;
          Alcotest.test_case "unguarded NaN spins" `Quick
            test_unguarded_nan_spins_to_cap;
          Alcotest.test_case "catches explosion" `Quick
            test_guard_catches_explosion;
          Alcotest.test_case "patience tolerates transients" `Quick
            test_guard_patience_tolerates_transients;
          Alcotest.test_case "invisible when healthy" `Quick
            test_guard_invisible_when_healthy;
        ] );
      ( "degenerate-poses",
        [ Alcotest.test_case "all nine solvers" `Quick test_degenerate_poses ] );
      ( "workspace-pool",
        [ Alcotest.test_case "local stats" `Quick test_workspace_local_stats ] );
      ( "ik",
        [
          Alcotest.test_case "problem validates dof" `Quick test_ik_problem_validates;
          Alcotest.test_case "problem copies theta0" `Quick test_ik_problem_copies_theta0;
          Alcotest.test_case "paper defaults" `Quick test_ik_defaults;
          Alcotest.test_case "work metric" `Quick test_ik_work;
          Alcotest.test_case "error_of" `Quick test_ik_error_of_zero;
        ] );
      ( "loop",
        [
          Alcotest.test_case "immediate convergence" `Quick test_loop_immediate_convergence;
          Alcotest.test_case "iteration cap" `Quick test_loop_cap;
          Alcotest.test_case "stall detection" `Quick test_loop_stall_detection;
          Alcotest.test_case "sweep accumulation" `Quick test_loop_accumulates_sweeps;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "known value" `Quick test_alpha_known;
          Alcotest.test_case "degenerate" `Quick test_alpha_degenerate;
          qcheck test_alpha_scale_invariance;
        ] );
      ( "jt-serial",
        [
          Alcotest.test_case "stability bound" `Quick test_jt_stability_bound_planar;
          Alcotest.test_case "converges on small chain" `Slow test_jt_serial_converges_small;
          Alcotest.test_case "error decreases" `Quick test_jt_serial_error_decreases;
          Alcotest.test_case "alpha override deterministic" `Quick
            test_jt_serial_alpha_override;
          Alcotest.test_case "gain speeds up" `Slow test_jt_serial_gain_speeds_up;
        ] );
      ( "quick-ik",
        [
          Alcotest.test_case "jt-buss converges" `Quick test_jt_buss_converges;
          Alcotest.test_case "buss beats fixed alpha" `Slow test_jt_buss_beats_jt_serial;
          Alcotest.test_case "converges" `Quick test_quick_ik_converges;
          Alcotest.test_case "invalid speculations" `Quick test_quick_ik_invalid_speculations;
          Alcotest.test_case "1 speculation = buss" `Quick test_quick_ik_one_speculation_is_buss;
          Alcotest.test_case "parallel bit-identical" `Quick
            test_quick_ik_parallel_bit_identical;
          Alcotest.test_case "parallel bit-identical above cutover" `Slow
            test_quick_ik_parallel_bit_identical_above_cutover;
          Alcotest.test_case "log-spaced ladder pin" `Quick
            test_quick_ik_log_spaced_ladder_pin;
          Alcotest.test_case "extended 1.0 = uniform" `Quick
            test_quick_ik_extended_one_is_uniform;
          Alcotest.test_case "all strategies converge" `Quick test_quick_ik_strategies_converge;
          Alcotest.test_case "beats serial 5x" `Slow test_quick_ik_beats_serial_on_batch;
          Alcotest.test_case "deterministic" `Quick test_quick_ik_deterministic;
          Alcotest.test_case "scale invariance" `Quick test_quick_ik_scale_invariance;
          Alcotest.test_case "line search converges" `Quick test_linesearch_converges;
          Alcotest.test_case "line search competitive" `Quick
            test_linesearch_competitive_with_quick_ik;
          Alcotest.test_case "line search never regresses" `Quick
            test_linesearch_never_regresses;
          Alcotest.test_case "line search invalid" `Quick test_linesearch_invalid;
          Alcotest.test_case "random chains converge" `Slow test_quick_ik_random_chains;
          Alcotest.test_case "iteration-count pin (12/30/100 DOF)" `Slow
            test_quick_ik_iteration_pin;
        ] );
      ( "pinv-dls-sdls",
        [
          Alcotest.test_case "pinv converges fast" `Quick test_pinv_converges_fast;
          Alcotest.test_case "pinv small step" `Quick test_pinv_small_step_still_converges;
          Alcotest.test_case "pinv 100dof" `Slow test_pinv_100dof;
          Alcotest.test_case "dls converges" `Quick test_dls_converges;
          Alcotest.test_case "dls lambda tradeoff" `Quick test_dls_lambda_tradeoff;
          Alcotest.test_case "sdls converges" `Quick test_sdls_converges;
          Alcotest.test_case "sdls gamma_max" `Quick test_sdls_respects_gamma_max;
        ] );
      ( "ccd",
        [
          Alcotest.test_case "converges planar" `Quick test_ccd_converges_planar;
          Alcotest.test_case "respects limits" `Quick test_ccd_respects_limits;
          Alcotest.test_case "prismatic chain" `Quick test_ccd_prismatic;
        ] );
      ( "cost",
        [
          Alcotest.test_case "fk consistency" `Quick test_cost_fk_consistency;
          Alcotest.test_case "totals" `Quick test_cost_totals;
          Alcotest.test_case "quick-ik structure" `Quick test_cost_quick_ik_structure;
          Alcotest.test_case "parallel scales" `Quick test_cost_parallel_scales_with_specs;
          Alcotest.test_case "monotone in dof" `Quick test_cost_monotone_in_dof;
          Alcotest.test_case "ccd superlinear" `Quick test_cost_ccd_superlinear;
          Alcotest.test_case "fixed alpha cheaper" `Quick test_cost_jt_serial_cheaper_than_buss;
        ] );
      ( "pose",
        [
          Alcotest.test_case "zero twist at solution" `Quick test_pose_twist_zero_at_solution;
          Alcotest.test_case "pure translation twist" `Quick test_pose_twist_pure_translation;
          Alcotest.test_case "dls converges" `Quick test_pose_dls_converges;
          Alcotest.test_case "quick converges" `Slow test_pose_quick_converges;
          Alcotest.test_case "jt progresses" `Slow test_pose_jt_progresses;
          Alcotest.test_case "quick beats jt" `Slow test_pose_quick_beats_jt;
          Alcotest.test_case "high-dof pose" `Slow test_pose_on_high_dof;
          Alcotest.test_case "invalid speculations" `Quick test_pose_invalid_speculations;
          Alcotest.test_case "target_of_mat4" `Quick test_pose_target_of_mat4_roundtrip;
        ] );
      ( "nullspace",
        [
          Alcotest.test_case "converges" `Quick test_nullspace_converges;
          Alcotest.test_case "improves comfort" `Quick test_nullspace_improves_comfort;
          Alcotest.test_case "reference objective" `Quick test_nullspace_reference_objective;
          Alcotest.test_case "custom objective" `Quick test_nullspace_custom_objective;
          Alcotest.test_case "gradient shape" `Quick test_nullspace_gradient_shapes;
          Alcotest.test_case "comfort bounds" `Quick test_comfort_bounds;
          Alcotest.test_case "optimize holds task" `Quick test_nullspace_optimize_holds_task;
          Alcotest.test_case "optimize zero iterations" `Quick
            test_nullspace_optimize_zero_iterations;
        ] );
      ( "restarts",
        [
          Alcotest.test_case "first try" `Quick test_restarts_first_try;
          Alcotest.test_case "recovers" `Quick test_restarts_recovers;
          Alcotest.test_case "exhausted returns best" `Quick
            test_restarts_exhausted_returns_best;
          Alcotest.test_case "invalid" `Quick test_restarts_invalid;
        ] );
      ( "rmrc",
        [
          Alcotest.test_case "static target settles" `Quick test_rmrc_static_target_settles;
          Alcotest.test_case "tracks moving target" `Quick test_rmrc_tracks_moving_target;
          Alcotest.test_case "sample structure" `Quick test_rmrc_sample_structure;
          Alcotest.test_case "rate limit" `Quick test_rmrc_rate_limit_respected;
          Alcotest.test_case "invalid dt" `Quick test_rmrc_invalid;
          Alcotest.test_case "on_iteration hook" `Quick test_on_iteration_observes_descent;
        ] );
      ( "multitask",
        [
          Alcotest.test_case "single task = position IK" `Quick
            test_multitask_end_effector_only_matches_dls;
          Alcotest.test_case "two points" `Quick test_multitask_two_points;
          Alcotest.test_case "distal columns zero" `Quick test_multitask_distal_columns_zero;
          Alcotest.test_case "weights scale rows" `Quick test_multitask_weights_scale_rows;
          Alcotest.test_case "validation" `Quick test_multitask_validation;
          Alcotest.test_case "conflicting tasks" `Quick
            test_multitask_conflicting_tasks_balance;
        ] );
      ( "batch-servo",
        [
          Alcotest.test_case "batch sequential" `Quick test_batch_sequential;
          Alcotest.test_case "batch parallel identical" `Quick
            test_batch_parallel_matches_sequential;
          Alcotest.test_case "batch empty" `Quick test_batch_empty;
          Alcotest.test_case "servo circle" `Quick test_servo_tracks_circle;
          Alcotest.test_case "servo warm vs cold" `Quick test_servo_warm_cheaper_than_cold;
          Alcotest.test_case "servo empty path" `Quick test_servo_empty_path;
          Alcotest.test_case "servo waypoint order" `Quick test_servo_waypoint_order;
        ] );
      ( "cross-solver",
        [
          Alcotest.test_case "all solve one problem" `Quick test_all_solvers_same_problem;
          Alcotest.test_case "named robots" `Slow test_all_solvers_named_robots;
          Alcotest.test_case "unreachable target" `Quick test_unreachable_target_caps;
          qcheck test_solver_results_deterministic;
        ] );
    ]
