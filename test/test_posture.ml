(* Differential and property tests for the posture library and the
   multi-seed speculative start selector: exact NN lookup vs a brute-force
   oracle, bit-identical persistence round trips, typed rejection of
   damaged files, and the seed-selection winner pinned bitwise against a
   serial per-candidate oracle. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
open Dadu_service
module Rng = Dadu_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

let bits = Int64.bits_of_float

let vec_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) a b

(* a family of chains spanning the paper's 3..100-DOF range, with both
   revolute-only and mixed-joint members *)
let chain_of_case ~kind ~dof =
  match kind mod 3 with
  | 0 -> Robots.eval_chain ~dof
  | 1 -> Robots.snake ~dof
  | _ -> Robots.planar ~dof ~reach:(float_of_int dof) ()

(* ---- nearest neighbour vs brute force ---- *)

let brute_force_nearest lib ~x ~y ~z =
  let best = ref (-1) and best_d2 = ref infinity in
  for i = 0 to Posture_library.size lib - 1 do
    let p = Posture_library.position lib i in
    let dx = p.Vec3.x -. x and dy = p.Vec3.y -. y and dz = p.Vec3.z -. z in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if d2 < !best_d2 then begin
      best := i;
      best_d2 := d2
    end
  done;
  !best

let test_nn_matches_brute_force =
  QCheck.Test.make ~name:"grid NN == brute-force argmin (3..100 DOF)"
    ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 3 100))
    (fun (seed, dof) ->
      let chain = chain_of_case ~kind:seed ~dof in
      let lib =
        Posture_library.build ~chain ~count:(32 + (seed mod 97)) ~seed ()
      in
      let rng = Rng.create (seed + 1) in
      let reach = Chain.reach chain in
      let ok = ref true in
      for q = 0 to 49 do
        (* half in-workspace queries, half uniform over a generous box
           (far queries exercise the ring scan's early-out bound) *)
        let x, y, z =
          if q mod 2 = 0 then begin
            let t = Target.reachable rng chain in
            (t.Vec3.x, t.Vec3.y, t.Vec3.z)
          end
          else
            ( Rng.uniform rng (-2. *. reach) (2. *. reach),
              Rng.uniform rng (-2. *. reach) (2. *. reach),
              Rng.uniform rng (-2. *. reach) (2. *. reach) )
        in
        if
          Posture_library.nearest_index lib ~x ~y ~z
          <> brute_force_nearest lib ~x ~y ~z
        then ok := false
      done;
      !ok)

let test_nn_edge_cases () =
  let chain = Robots.eval_chain ~dof:6 in
  let lib = Posture_library.build ~chain ~count:1 ~seed:3 () in
  Alcotest.(check int) "single posture always nearest" 0
    (Posture_library.nearest_index lib ~x:100. ~y:(-50.) ~z:3.);
  Alcotest.(check int) "non-finite query misses" (-1)
    (Posture_library.nearest_index lib ~x:Float.nan ~y:0. ~z:0.);
  Alcotest.(check bool) "non-finite nearest is None" true
    (Posture_library.nearest lib (Vec3.make Float.infinity 0. 0.) = None);
  Alcotest.check_raises "zero count rejected"
    (Invalid_argument "Posture_library.build: count must be positive")
    (fun () -> ignore (Posture_library.build ~chain ~count:0 ~seed:1 ()))

let test_build_deterministic () =
  let chain = Robots.snake ~dof:30 in
  let a = Posture_library.build ~chain ~count:64 ~seed:11 () in
  let b = Posture_library.build ~chain ~count:64 ~seed:11 () in
  Alcotest.(check bool) "same (chain, count, seed) => same postures" true
    (Array.for_all2 vec_bits_equal
       (Array.init 64 (Posture_library.posture a))
       (Array.init 64 (Posture_library.posture b)));
  let c = Posture_library.build ~chain ~count:64 ~seed:12 () in
  Alcotest.(check bool) "different seed => different postures" false
    (vec_bits_equal (Posture_library.posture a 0) (Posture_library.posture c 0))

(* ---- chain fingerprints ---- *)

let test_fingerprint_identity () =
  let a = Robots.eval_chain ~dof:12 in
  let b = Robots.snake ~dof:12 in
  Alcotest.(check bool) "equal-DOF robots fingerprint differently" true
    (Chain.fingerprint a <> Chain.fingerprint b);
  Alcotest.(check int) "fingerprint is a pure function of the chain"
    (Chain.fingerprint a)
    (Chain.fingerprint (Robots.eval_chain ~dof:12));
  let renamed =
    Chain.make ~name:"other-name" ~base:(Chain.base a) ~tool:(Chain.tool a)
      (Chain.links a)
  in
  Alcotest.(check int) "name excluded (structural identity)"
    (Chain.fingerprint a) (Chain.fingerprint renamed);
  let lib = Posture_library.build ~chain:a ~count:8 ~seed:1 () in
  Alcotest.(check bool) "library matches its own chain" true
    (Posture_library.matches lib a);
  Alcotest.(check bool) "library refuses an equal-DOF stranger" false
    (Posture_library.matches lib b)

(* ---- persistence ---- *)

let with_tmp f =
  let path = Filename.temp_file "posture" ".plib" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  f path

let lib_equal_bits a b =
  Posture_library.chain_name a = Posture_library.chain_name b
  && Posture_library.fingerprint a = Posture_library.fingerprint b
  && Posture_library.dof a = Posture_library.dof b
  && Posture_library.size a = Posture_library.size b
  && Int64.equal
       (bits (Posture_library.cell_size a))
       (bits (Posture_library.cell_size b))
  && Array.for_all2 vec_bits_equal
       (Array.init (Posture_library.size a) (Posture_library.posture a))
       (Array.init (Posture_library.size b) (Posture_library.posture b))

let test_roundtrip_bit_identity =
  QCheck.Test.make ~name:"save -> load is bit-identical" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 3 60))
    (fun (seed, dof) ->
      let chain = chain_of_case ~kind:seed ~dof in
      let lib =
        Posture_library.build ~chain ~count:(1 + (seed mod 40)) ~seed ()
      in
      with_tmp @@ fun path ->
      match Posture_library.save lib path with
      | Error _ -> false
      | Ok () ->
        (match Posture_library.load path with
        | Error _ -> false
        | Ok loaded ->
          lib_equal_bits lib loaded
          &&
          (* the rebuilt grid answers queries identically *)
          let rng = Rng.create seed in
          let ok = ref true in
          for _ = 1 to 20 do
            let t = Target.reachable rng chain in
            if
              Posture_library.nearest_index lib ~x:t.Vec3.x ~y:t.Vec3.y
                ~z:t.Vec3.z
              <> Posture_library.nearest_index loaded ~x:t.Vec3.x ~y:t.Vec3.y
                   ~z:t.Vec3.z
            then ok := false
          done;
          !ok))

let write_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let read_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let damaged_error mutate =
  let chain = Robots.eval_chain ~dof:6 in
  let lib = Posture_library.build ~chain ~count:16 ~seed:5 () in
  with_tmp @@ fun path ->
  (match Posture_library.save lib path with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "save failed");
  let b = read_bytes path in
  write_bytes path (mutate b);
  match Posture_library.load path with
  | Ok _ -> Alcotest.fail "damaged file accepted"
  | Error e -> e

let check_error name expected actual =
  Alcotest.(check string)
    name
    (Format.asprintf "%a" Posture_library.pp_load_error expected)
    (Format.asprintf "%a" Posture_library.pp_load_error actual)

let test_load_typed_errors () =
  (match Posture_library.load "/nonexistent/posture.plib" with
  | Error (Posture_library.Io _) -> ()
  | Error e ->
    Alcotest.failf "expected Io, got %a" Posture_library.pp_load_error e
  | Ok _ -> Alcotest.fail "missing file loaded");
  check_error "bad magic" Posture_library.Bad_magic
    (damaged_error (fun b ->
         Bytes.set b 0 'X';
         b));
  check_error "unsupported version" (Posture_library.Unsupported_version 9)
    (damaged_error (fun b ->
         Bytes.set_int32_le b 8 9l;
         b));
  check_error "truncated" Posture_library.Truncated
    (damaged_error (fun b -> Bytes.sub b 0 (Bytes.length b - 7)));
  check_error "truncated to a stub" Posture_library.Truncated
    (damaged_error (fun b -> Bytes.sub b 0 5));
  check_error "corrupted payload" Posture_library.Checksum_mismatch
    (damaged_error (fun b ->
         let k = 80 in
         Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x40));
         b));
  check_error "trailing bytes" (Posture_library.Malformed "trailing bytes")
    (damaged_error (fun b -> Bytes.cat b (Bytes.make 1 '\000')))

(* ---- multi-seed winner vs serial oracle ---- *)

(* Score one candidate exactly as the selector does: the speculation
   kernel with a zero direction, squared end-effector distance. *)
let oracle_score chain ~tx ~ty ~tz theta =
  let dof = Chain.dof chain in
  let scratch = Fk.make_scratch ~dof () in
  let pos = Array.make 3 0. and err2 = Array.make 1 0. in
  Fk.speculate_range_into ~scratch ~pos ~err2 ~tx ~ty ~tz chain ~theta
    ~dtheta:(Array.make dof 0.) ~coeffs:[| 0. |] ~stride:1 ~lo:0 ~hi:1;
  err2.(0)

let clamp chain v = Chain.clamp_config chain v

(* The selector's candidate list, assembled independently: θ₀, cache,
   library NN, zero, then perturbations of the best base (the documented
   (0x5eed, ordinal, slot) noise stream), truncated to [candidates]. *)
let oracle_candidates ~library ~cache_seed ~candidates ~ordinal ~scale ~chain
    ~target ~theta0 =
  let dof = Chain.dof chain in
  let base = ref [] in
  let push src v = base := (src, clamp chain v) :: !base in
  push Seed_select.Theta0 theta0;
  (match cache_seed with Some s -> push Seed_select.Cache s | None -> ());
  (match library with
  | Some lib when Posture_library.matches lib chain ->
    (match Posture_library.nearest lib target with
    | Some (p, _) -> push Seed_select.Library p
    | None -> ())
  | _ -> ());
  push Seed_select.Zero (Array.make dof 0.);
  let cands = Array.of_list (List.rev !base) in
  let cands =
    if Array.length cands > candidates then Array.sub cands 0 candidates
    else cands
  in
  let scores =
    Array.map
      (fun (_, v) ->
        oracle_score chain ~tx:target.Vec3.x ~ty:target.Vec3.y
          ~tz:target.Vec3.z v)
      cands
  in
  let best = ref 0 in
  Array.iteri (fun k s -> if s < scores.(!best) then best := k) scores;
  let perturbed = ref [] in
  let slot = ref 0 in
  while Array.length cands + List.length !perturbed < candidates do
    let rng = Rng.create (Hashtbl.hash (0x5eed, ordinal, !slot)) in
    let v = Array.copy (snd cands.(!best)) in
    (* explicit loop: the noise stream must be consumed in index order *)
    for i = 0 to dof - 1 do
      v.(i) <- v.(i) +. (scale *. Rng.gaussian rng)
    done;
    perturbed := (Seed_select.Perturbed, clamp chain v) :: !perturbed;
    incr slot
  done;
  Array.append cands (Array.of_list (List.rev !perturbed))

let oracle_choose ~library ~cache_seed ~candidates ~ordinal ~scale ~chain
    ~target ~theta0 =
  let cands =
    oracle_candidates ~library ~cache_seed ~candidates ~ordinal ~scale ~chain
      ~target ~theta0
  in
  let scores =
    Array.map
      (fun (_, v) ->
        oracle_score chain ~tx:target.Vec3.x ~ty:target.Vec3.y
          ~tz:target.Vec3.z v)
      cands
  in
  let best = ref 0 in
  Array.iteri (fun k s -> if s < scores.(!best) then best := k) scores;
  cands.(!best)

let test_winner_matches_oracle =
  QCheck.Test.make
    ~name:"multi-seed winner == serial per-candidate oracle (bitwise)"
    ~count:80
    QCheck.(triple (int_range 0 100_000) (int_range 3 100) (int_range 2 8))
    (fun (seed, dof, candidates) ->
      let chain = chain_of_case ~kind:seed ~dof in
      let rng = Rng.create seed in
      let p = Ik.random_problem rng chain in
      let library =
        if seed mod 3 = 0 then None
        else Some (Posture_library.build ~chain ~count:24 ~seed ())
      in
      let cache_seed =
        if seed mod 2 = 0 then Some (Target.random_config rng chain) else None
      in
      let sel = Seed_select.create () in
      let dst = Array.make dof 0. in
      let source =
        Seed_select.choose sel ~session_seed:None ~library ~cache_seed
          ~candidates ~ordinal:seed ~scale:0.1 ~chain ~tx:p.Ik.target.Vec3.x
          ~ty:p.Ik.target.Vec3.y ~tz:p.Ik.target.Vec3.z ~theta0:p.Ik.theta0
          ~dst
      in
      let osrc, otheta =
        oracle_choose ~library ~cache_seed ~candidates ~ordinal:seed ~scale:0.1
          ~chain ~target:p.Ik.target ~theta0:p.Ik.theta0
      in
      source = osrc && vec_bits_equal dst otheta)

let test_selector_scratch_reuse () =
  (* one scratch serving alternating chains/candidate counts returns the
     same winners as fresh scratches *)
  let sel = Seed_select.create () in
  let rng = Rng.create 7 in
  let ok = ref true in
  for i = 0 to 19 do
    let chain = chain_of_case ~kind:i ~dof:(3 + (i * 5 mod 60)) in
    let dof = Chain.dof chain in
    let p = Ik.random_problem rng chain in
    let lib = Posture_library.build ~chain ~count:16 ~seed:i () in
    let run sel =
      let dst = Array.make dof 0. in
      let src =
        Seed_select.choose sel ~session_seed:None ~library:(Some lib)
          ~cache_seed:None ~candidates:(2 + (i mod 5)) ~ordinal:i ~scale:0.1
          ~chain
          ~tx:p.Ik.target.Vec3.x ~ty:p.Ik.target.Vec3.y ~tz:p.Ik.target.Vec3.z
          ~theta0:p.Ik.theta0 ~dst
      in
      (src, dst)
    in
    let s1, d1 = run sel in
    let s2, d2 = run (Seed_select.create ()) in
    if not (s1 = s2 && vec_bits_equal d1 d2) then ok := false
  done;
  Alcotest.(check bool) "reused scratch == fresh scratch" true !ok

(* ---- library seeding cuts iterations (acceptance criterion) ---- *)

let test_seeded_fewer_iterations () =
  let chain = Robots.eval_chain ~dof:30 in
  let lib = Posture_library.build ~chain ~count:256 ~seed:1 () in
  let rng = Rng.create 2 in
  let config = { Ik.default_config with Ik.max_iterations = 2_000 } in
  let cold = ref 0 and seeded = ref 0 and n = 40 in
  for _ = 1 to n do
    let p = Ik.random_problem rng chain in
    let r_cold = Quick_ik.solve ~config p in
    let theta0 =
      match Posture_library.nearest lib p.Ik.target with
      | Some (q, _) -> q
      | None -> Alcotest.fail "no neighbour"
    in
    let r_seeded = Quick_ik.solve ~config { p with Ik.theta0 } in
    (* a cold miss burns its full cap, which only helps the cold total —
       the comparison stays honest without pinning cold convergence *)
    Alcotest.(check bool) "seeded converges" true
      (r_seeded.Ik.status = Ik.Converged);
    cold := !cold + r_cold.Ik.iterations;
    seeded := !seeded + r_seeded.Ik.iterations
  done;
  if not (!seeded < !cold) then
    Alcotest.failf "library seeding did not cut iterations: seeded %d vs cold %d"
      !seeded !cold

let () =
  Alcotest.run "dadu_posture"
    [
      ( "nearest neighbour",
        [
          qcheck test_nn_matches_brute_force;
          Alcotest.test_case "edge cases" `Quick test_nn_edge_cases;
          Alcotest.test_case "build deterministic" `Quick
            test_build_deterministic;
          Alcotest.test_case "chain fingerprints" `Quick
            test_fingerprint_identity;
        ] );
      ( "persistence",
        [
          qcheck test_roundtrip_bit_identity;
          Alcotest.test_case "typed load errors" `Quick test_load_typed_errors;
        ] );
      ( "seed selection",
        [
          qcheck test_winner_matches_oracle;
          Alcotest.test_case "scratch reuse" `Quick test_selector_scratch_reuse;
          Alcotest.test_case "library seeding cuts iterations" `Slow
            test_seeded_fewer_iterations;
        ] );
    ]
