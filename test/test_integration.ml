(* End-to-end scenarios spanning multiple libraries: trajectory tracking,
   accelerator runs on named robots, and full experiment plumbing. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
module Rng = Dadu_util.Rng

let accuracy = Ik.default_config.Ik.accuracy

(* Trajectory tracking: solve IK along a workspace path, warm-starting each
   waypoint from the previous solution — the usage pattern of the
   trajectory example. *)
let track chain solve path theta0 =
  let theta = ref (Vec.copy theta0) in
  Array.map
    (fun target ->
      let p = Ik.problem ~chain ~target ~theta0:!theta in
      let r = solve p in
      theta := r.Ik.theta;
      r)
    path

let test_trajectory_tracking_arm7 () =
  let chain = Robots.arm_7dof () in
  (* a modest circle in front of the arm, well inside the workspace *)
  let center = Vec3.make 0.45 0. 0.35 in
  let path = Traj.circle ~center ~radius:0.12 ~normal:(Vec3.make 0. 1. 0.2) ~samples:24 in
  let theta0 = Array.make 7 0.3 in
  let results =
    track chain (fun p -> Dls.solve ~config:{ Ik.default_config with max_iterations = 2000 } p) path theta0
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "waypoint %d converged (err %.4f)" i r.Ik.error)
        true
        (r.Ik.status = Ik.Converged))
    results;
  (* warm starts should make later waypoints cheap *)
  let later =
    Array.to_list results |> List.filteri (fun i _ -> i > 0)
    |> List.map (fun r -> r.Ik.iterations)
  in
  Alcotest.(check bool) "warm starts converge quickly" true
    (List.for_all (fun i -> i < 500) later)

let test_trajectory_tracking_quick_ik_snake () =
  let chain = Robots.snake ~dof:30 in
  let rng = Rng.create 99 in
  (* anchor the path around a known-reachable point *)
  let anchor = Fk.position chain (Target.random_config rng chain) in
  let path =
    Traj.line ~from:anchor
      ~to_:(Vec3.add anchor (Vec3.make 0.05 (-0.05) 0.03))
      ~samples:10
  in
  let theta0 = Target.random_config rng chain in
  let results =
    track chain (fun p -> Quick_ik.solve ~speculations:32 p) path theta0
  in
  Array.iter
    (fun r -> Alcotest.(check bool) "snake waypoint" true (r.Ik.status = Ik.Converged))
    results

let test_ikacc_on_snake () =
  let chain = Robots.snake ~dof:50 in
  let rng = Rng.create 100 in
  let p = Ik.random_problem rng chain in
  let report = Dadu_accel.Ikacc.solve ~speculations:64 p in
  Alcotest.(check bool) "converged" true
    (report.Dadu_accel.Ikacc.result.Ik.status = Ik.Converged);
  Alcotest.(check bool) "cycle count sane" true
    (report.Dadu_accel.Ikacc.total_cycles > 0
    && report.Dadu_accel.Ikacc.time_s < 1.0);
  Alcotest.(check bool) "energy sane" true
    (report.Dadu_accel.Ikacc.energy.Dadu_accel.Energy.total_j > 0.)

let test_100dof_headline () =
  (* the abstract's headline scenario: a 100-DOF manipulator solved in
     real time, verified through FK *)
  let chain = Robots.eval_chain ~dof:100 in
  let rng = Rng.create 101 in
  let p = Ik.random_problem rng chain in
  let report = Dadu_accel.Ikacc.solve ~speculations:64 p in
  let r = report.Dadu_accel.Ikacc.result in
  Alcotest.(check bool) "converged" true (r.Ik.status = Ik.Converged);
  let err = Vec3.dist p.Ik.target (Fk.position chain r.Ik.theta) in
  Alcotest.(check bool) "FK confirms solution" true (err < accuracy);
  Alcotest.(check bool) "faster than the paper's 12 ms" true
    (report.Dadu_accel.Ikacc.time_s < 12e-3)

let test_multiple_solvers_reach_same_target () =
  (* redundant chains admit many solutions; all solvers must land within
     accuracy of the same target, not at the same angles *)
  let chain = Robots.arm_6dof () in
  let rng = Rng.create 102 in
  let p = Ik.random_problem rng chain in
  let config = { Ik.default_config with max_iterations = 3_000 } in
  List.iter
    (fun (name, solve) ->
      let r : Ik.result = solve config p in
      let err = Vec3.dist p.Ik.target (Fk.position chain r.Ik.theta) in
      Alcotest.(check bool) (name ^ " reaches target") true (err < accuracy))
    [
      ("quick-ik", fun config p -> Quick_ik.solve ~speculations:32 ~config p);
      ("jt-buss", fun config p -> Jt_buss.solve ~config p);
      ("pinv", fun config p -> Pinv_svd.solve ~config p);
      ("dls", fun config p -> Dls.solve ~config p);
      ("sdls", fun config p -> Sdls.solve ~config p);
      (* CCD is excluded here: on joint-limited 6-DOF arms it is prone to
         local minima — the known weakness the paper's related work cites;
         its own suite covers the chains where it is reliable. *)
    ]

let test_experiment_pipeline_smoke () =
  (* the full bench pipeline at minimum scale: measurements -> table2 ->
     table3 -> ablation *)
  let scale =
    { Dadu_experiments.Runner.targets = 2; max_iterations = 300; speculations = 8; seed = 1 }
  in
  let m = Dadu_experiments.Measurements.collect ~dofs:[ 5 ] scale in
  let t2 = Dadu_experiments.Table2.compute m in
  let t3 = Dadu_experiments.Table3.compute m t2 in
  Alcotest.(check int) "t2 rows" 1 (List.length t2);
  Alcotest.(check int) "t3 rows" 1 (List.length t3);
  let ssus = Dadu_experiments.Ablation.run_ssus ~ssus:[ 4 ] ~dof:5 m in
  Alcotest.(check int) "ablation rows" 1 (List.length ssus)

let test_parallel_quick_ik_full_solve () =
  let pool = Dadu_util.Domain_pool.create (Dadu_util.Domain_pool.recommended_size ()) in
  Fun.protect ~finally:(fun () -> Dadu_util.Domain_pool.shutdown pool) @@ fun () ->
  let chain = Robots.eval_chain ~dof:25 in
  let rng = Rng.create 103 in
  for _ = 1 to 3 do
    let p = Ik.random_problem rng chain in
    let seq = Quick_ik.solve ~speculations:64 p in
    let par = Quick_ik.solve ~speculations:64 ~mode:(Quick_ik.Parallel pool) p in
    Alcotest.(check bool) "parallel full solve identical" true
      (seq.Ik.theta = par.Ik.theta && seq.Ik.iterations = par.Ik.iterations)
  done

let test_scara_pick_and_place () =
  (* SCARA working a pick-and-place line across its table *)
  let chain = Robots.scara () in
  let rng = Rng.create 104 in
  let from = Fk.position chain (Target.random_config rng chain) in
  let to_ = Fk.position chain (Target.random_config rng chain) in
  let path = Traj.line ~from ~to_ ~samples:8 in
  let theta0 = Target.random_config rng chain in
  let results = track chain (fun p -> Dls.solve p) path theta0 in
  Array.iter
    (fun r -> Alcotest.(check bool) "scara waypoint" true (r.Ik.status = Ik.Converged))
    results

let test_umbrella_library () =
  (* the Dadu.* re-exports are the documented entry point; exercise one
     call through each *)
  let chain = Dadu.Kinematics.Robots.arm_7dof () in
  let rng = Dadu.Util.Rng.create 1 in
  let p = Dadu.Core.Ik.random_problem rng chain in
  let r = Dadu.Core.Quick_ik.solve ~speculations:16 p in
  Alcotest.(check bool) "solves through the umbrella" true
    (r.Dadu.Core.Ik.status = Dadu.Core.Ik.Converged);
  let report = Dadu.Accel.Ikacc.solve ~speculations:16 p in
  Alcotest.(check bool) "accelerator through the umbrella" true
    (report.Dadu.Accel.Ikacc.time_s > 0.);
  Alcotest.(check (float 1e-9)) "platform constants" 10.
    Dadu.Platforms.Platform.atom.Dadu.Platforms.Platform.avg_power_w

let () =
  Alcotest.run "dadu_integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "7-DOF arm circle tracking" `Slow
            test_trajectory_tracking_arm7;
          Alcotest.test_case "30-DOF snake line tracking" `Slow
            test_trajectory_tracking_quick_ik_snake;
          Alcotest.test_case "IKAcc on 50-DOF snake" `Slow test_ikacc_on_snake;
          Alcotest.test_case "100-DOF headline" `Slow test_100dof_headline;
          Alcotest.test_case "all solvers reach target" `Slow
            test_multiple_solvers_reach_same_target;
          Alcotest.test_case "experiment pipeline smoke" `Quick
            test_experiment_pipeline_smoke;
          Alcotest.test_case "parallel full solve" `Slow test_parallel_quick_ik_full_solve;
          Alcotest.test_case "SCARA pick-and-place" `Quick test_scara_pick_and_place;
          Alcotest.test_case "umbrella library" `Quick test_umbrella_library;
        ] );
    ]
