(* Chaos suite: the serving layer under randomized fault injection.

   Every case arms a randomly generated fault plan (crashing, lying, and
   NaN-scribbling solver tiers) against a service configured with all the
   resilience machinery on — divergence guard, per-solver circuit
   breakers, perturbed-seed retries — and checks the contracts that must
   hold no matter what the faults do:

   - every request gets a well-formed [Solved] reply (crashes are
     contained, nothing escapes as [Faulted]);
   - a [Converged] status is never a lie: the true FK error, recomputed
     here, is within the configured accuracy and θ is finite;
   - with a fixed fault seed, replies are byte-identical across domain
     pool sizes 1, 2 and 4 (injection is forked per request index, so
     scheduling cannot change what faults fire).

   The master seed folds into every derived fault/problem seed and can be
   pinned from the environment: [DADU_CHAOS_SEED=12345 dune exec
   test/test_chaos.exe] — CI runs the suite under several seeds. *)

open Dadu_core
open Dadu_service
module Rng = Dadu_util.Rng
module Fault = Dadu_util.Fault
module Pool = Dadu_util.Domain_pool

let master_seed =
  match Sys.getenv_opt "DADU_CHAOS_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> failwith (Printf.sprintf "DADU_CHAOS_SEED=%S is not an integer" s))
  | None -> 0xC1A05

let qcheck = QCheck_alcotest.to_alcotest

let eval12 = Dadu_kinematics.Robots.eval_chain ~dof:12

let random_problems ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Ik.random_problem rng eval12)

(* Fault sites the fallback chain consults, one per failure mode: a tier
   that raises, a tier that corrupts its result buffer, a tier that
   claims success it did not earn. *)
let sites = [| "solver-raise"; "solver-nan"; "solver-lie" |]

let plan_of_seed seed =
  let rng = Rng.create (Hashtbl.hash (master_seed, seed, "plan")) in
  let rule _ =
    let site = sites.(Rng.int rng (Array.length sites)) in
    let trigger =
      match Rng.int rng 5 with
      | 0 -> Fault.Always
      | 1 -> Fault.First (1 + Rng.int rng 3)
      | 2 -> Fault.Every (1 + Rng.int rng 4)
      | 3 -> Fault.From_iteration (Rng.int rng 4)
      | _ -> Fault.Prob (0.1 +. Rng.float rng 0.8)
    in
    { Fault.site; trigger; arg = float_of_int (Rng.int rng 64) }
  in
  List.init (1 + Rng.int rng 3) rule

(* Everything on: guard, breakers, one perturbed-seed retry.  Budgets are
   kept small so 200 cases stay fast — the contracts under test don't
   depend on convergence rates. *)
let chaos_config ~fault =
  {
    Service.default_config with
    Service.solvers = [ Fallback.Quick_ik; Fallback.Dls ];
    speculations = 16;
    max_iterations = 400;
    chunk = 4;
    guard = Some Ik.default_guard;
    fault;
    breaker = Some { Breaker.threshold = 2; cooldown = 8 };
    retries = 1;
    retry_scale = 0.1;
  }

let strip_latency = function
  | Service.Solved
      {
        result;
        solver;
        fallbacks;
        cache_hit;
        session_hit;
        deadline_exceeded;
        breaker_skips;
        retries;
        retry_converged;
        trail;
        latency_s = _;
      } ->
    `Solved
      ( result,
        solver,
        fallbacks,
        cache_hit,
        session_hit,
        deadline_exceeded,
        breaker_skips,
        retries,
        retry_converged,
        trail )
  | Service.Rejected invalid -> `Rejected invalid
  | Service.Faulted msg -> `Faulted msg

let solve_under_faults ?pool ~case n =
  let plan = plan_of_seed case in
  let fault = Fault.arm ~seed:(Hashtbl.hash (master_seed, case, "arm")) plan in
  let config = chaos_config ~fault in
  let s = Service.create ?pool ~config () in
  let problems = random_problems ~seed:(Hashtbl.hash (master_seed, case, "prob")) n in
  (config, problems, Service.solve_batch s problems)

(* Property 1: whatever the plan, every reply is a well-formed [Solved]
   and [Converged] is FK-confirmed. *)
let well_formed case =
  let n = 5 in
  let config, problems, replies = solve_under_faults ~case n in
  if Array.length replies <> n then
    QCheck.Test.fail_reportf "case %d: %d replies for %d requests" case
      (Array.length replies) n;
  Array.iteri
    (fun i reply ->
      match reply with
      | Service.Rejected _ ->
        QCheck.Test.fail_reportf "case %d req %d: valid problem rejected" case i
      | Service.Faulted msg ->
        QCheck.Test.fail_reportf "case %d req %d: crash escaped containment: %s"
          case i msg
      | Service.Solved
          { result; trail; retries; breaker_skips; latency_s; fallbacks; _ } ->
        if trail = [] then
          QCheck.Test.fail_reportf "case %d req %d: empty trail" case i;
        if retries < 0 || retries > config.Service.retries then
          QCheck.Test.fail_reportf "case %d req %d: retries %d out of range" case
            i retries;
        if breaker_skips < 0 || breaker_skips > List.length config.Service.solvers
        then
          QCheck.Test.fail_reportf "case %d req %d: breaker_skips %d out of range"
            case i breaker_skips;
        if fallbacks < 0 then
          QCheck.Test.fail_reportf "case %d req %d: negative fallbacks" case i;
        if latency_s < 0. then
          QCheck.Test.fail_reportf "case %d req %d: negative latency" case i;
        if result.Ik.status = Ik.Converged then begin
          if not (Array.for_all Float.is_finite result.Ik.theta) then
            QCheck.Test.fail_reportf
              "case %d req %d: Converged with non-finite theta" case i;
          let p = problems.(i) in
          let actual = Ik.error_of p.Ik.chain p.Ik.target result.Ik.theta in
          if not (actual <= config.Service.accuracy) then
            QCheck.Test.fail_reportf
              "case %d req %d: Converged but true FK error %.3e > %.3e" case i
              actual config.Service.accuracy
        end)
    replies;
  true

(* Property 2: a fixed fault seed replays byte-identically whatever the
   pool size — [compare] (not [=]) so NaN fields compare equal. *)
let pool_invariant case =
  let n = 6 in
  let run pool_size =
    if pool_size <= 1 then
      let _, _, replies = solve_under_faults ~case n in
      Array.map strip_latency replies
    else
      let pool = Pool.create pool_size in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let _, _, replies = solve_under_faults ~pool ~case n in
      Array.map strip_latency replies
  in
  let solo = run 1 in
  List.for_all
    (fun size ->
      let got = run size in
      if compare solo got <> 0 then
        QCheck.Test.fail_reportf
          "case %d: replies differ between pool sizes 1 and %d" case size
      else true)
    [ 2; 4 ]

let test_well_formed =
  QCheck.Test.make ~name:"chaos: replies well-formed, Converged never lies"
    ~count:120
    QCheck.(make Gen.(int_bound 1_000_000))
    well_formed

let test_pool_invariant =
  QCheck.Test.make ~name:"chaos: fixed fault seed is pool-size invariant"
    ~count:80
    QCheck.(make Gen.(int_bound 1_000_000))
    pool_invariant

let () =
  Alcotest.run "dadu_chaos"
    [ ("chaos", [ qcheck test_well_formed; qcheck test_pool_invariant ]) ]
