(* Allocation tests for the zero-allocation solver kernels.

   Strategy: solve against an unreachable target with a tiny accuracy so a
   solver runs exactly [max_iterations] iterations, on one shared
   workspace.  Two runs of different lengths bracket the steady state: the
   difference of their [Gc.minor_words] deltas cancels every per-solve
   constant (closure for the step function, result record, final
   [Vec.copy]) and leaves exactly the words allocated per iteration.  A
   warm-up solve first populates the candidate pools and the FK scratch's
   compiled-chain cache, which do allocate, but only once per workspace. *)

open Dadu_kinematics
open Dadu_core

let unreachable_problem ~dof =
  let chain = Robots.eval_chain ~dof in
  let theta0 = Array.make dof 0.1 in
  let target = Dadu_linalg.Vec3.make 1e6 1e6 1e6 in
  Ik.problem ~chain ~target ~theta0

let config iters = { Ik.default_config with max_iterations = iters; accuracy = 1e-9 }

(* Words allocated per iteration in steady state, measured over
   [long - short] iterations. *)
let words_per_iter ~short ~long solve =
  solve (config 10);
  (* warm *)
  let w0 = Gc.minor_words () in
  solve (config short);
  let w1 = Gc.minor_words () in
  solve (config long);
  let w2 = Gc.minor_words () in
  ((w2 -. w1) -. (w1 -. w0)) /. float_of_int (long - short)

let check_zero name solve =
  let per_iter = words_per_iter ~short:200 ~long:1200 solve in
  Alcotest.(check (float 0.)) (name ^ ": minor words per iteration") 0. per_iter

(* The link-major speculation kernel itself, without the solver driver
   around it: repeated sweeps on warm buffers must allocate exactly
   nothing — no closures, no boxed floats, no temporaries. *)
let test_speculation_kernel_zero () =
  let dof = 30 and count = 64 in
  let chain = Robots.eval_chain ~dof in
  let scratch = Fk.make_scratch () in
  Fk.precompile scratch chain;
  let theta = Array.make dof 0.1 in
  let dtheta = Array.make dof 0.02 in
  let coeffs = Array.init count (fun k -> float_of_int (k + 1) /. 64.) in
  let pos = Array.make (3 * count) 0. in
  let err2 = Array.make count 0. in
  let sweep () =
    Fk.speculate_range_into ~scratch ~pos ~err2 ~tx:1e6 ~ty:1e6 ~tz:1e6 chain
      ~theta ~dtheta ~coeffs ~stride:count ~lo:0 ~hi:count
  in
  sweep ();
  (* warm *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    sweep ()
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.)) "kernel minor words per sweep" 0.
    ((w1 -. w0) /. 1000.)

let test_quick_ik_12dof () =
  let p = unreachable_problem ~dof:12 in
  let ws = Workspace.create ~dof:12 in
  check_zero "quick_ik seq 12dof" (fun config ->
      ignore (Quick_ik.solve ~speculations:64 ~workspace:ws ~config p))

let test_quick_ik_30dof () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  check_zero "quick_ik seq 30dof" (fun config ->
      ignore (Quick_ik.solve ~speculations:64 ~workspace:ws ~config p))

let test_quick_ik_100dof () =
  let p = unreachable_problem ~dof:100 in
  let ws = Workspace.create ~dof:100 in
  check_zero "quick_ik seq 100dof" (fun config ->
      ignore (Quick_ik.solve ~speculations:16 ~workspace:ws ~config p))

let test_jt_serial () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  check_zero "jt_serial 30dof" (fun config ->
      ignore (Jt_serial.solve ~workspace:ws ~config p))

let test_jt_buss () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  check_zero "jt_buss 30dof" (fun config ->
      ignore (Jt_buss.solve ~workspace:ws ~config p))

let test_jt_linesearch () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  check_zero "jt_linesearch 30dof" (fun config ->
      ignore (Jt_linesearch.solve ~workspace:ws ~config p))

let test_dls () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  check_zero "dls 30dof" (fun config ->
      ignore (Dls.solve ~workspace:ws ~config p))

(* The speculative seed selector on warm scratch: assembling and scoring
   a perturbation-free candidate set (theta0, cache, library NN, zero)
   plus the grid nearest-neighbour lookup must allocate exactly nothing —
   Perturbed slots are excluded because each one seeds a fresh Rng. *)
let test_seed_select_zero () =
  let dof = 30 in
  let chain = Robots.eval_chain ~dof in
  let library =
    Some (Dadu_service.Posture_library.build ~chain ~count:128 ~seed:7 ())
  in
  let sel = Dadu_service.Seed_select.create () in
  let theta0 = Array.make dof 0.2 in
  let cache_seed = Some (Array.make dof 0.1) in
  let dst = Array.make dof 0. in
  let choose ordinal =
    ignore
      (Dadu_service.Seed_select.choose sel ~session_seed:None ~library
         ~cache_seed ~candidates:4 ~ordinal ~scale:0.1 ~chain ~tx:0.8
         ~ty:(-0.3) ~tz:1.1 ~theta0 ~dst)
  in
  choose 0;
  (* warm *)
  let w0 = Gc.minor_words () in
  for i = 1 to 1000 do
    choose i
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.)) "seed selection minor words per request" 0.
    ((w1 -. w0) /. 1000.)

(* The wave-fused row-scoring kernel (score_rows_into): repeated sweeps
   over a warm lane-major candidate plane with per-row targets — the
   steady state of the snapshot-prepare scoring pass — must allocate
   exactly nothing per candidate score. *)
let test_score_rows_kernel_zero () =
  let dof = 30 and rows = 20 in
  let chain = Robots.eval_chain ~dof in
  let scratch = Fk.make_scratch () in
  Fk.precompile scratch chain;
  let tstride = dof in
  let thetas = Array.init (rows * tstride) (fun i -> 0.01 *. float_of_int i) in
  let txs = Array.init rows (fun k -> 0.5 +. (0.01 *. float_of_int k)) in
  let tys = Array.make rows (-0.3) in
  let tzs = Array.make rows 1.1 in
  let pos = Array.make (3 * rows) 0. in
  let err2 = Array.make rows 0. in
  let sweep () =
    Fk.score_rows_into ~scratch ~pos ~err2 ~txs ~tys ~tzs chain ~thetas
      ~tstride ~stride:rows ~lo:0 ~hi:rows
  in
  sweep ();
  (* warm *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    sweep ()
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.)) "row-scoring kernel minor words per sweep" 0.
    ((w1 -. w0) /. 1000.)

(* A full wave through choose_wave on warm scratch, perturbation-free
   candidate sets (theta0 / cache / library / zero): the candidate scoring
   itself stays out of the allocator — what remains per wave is the
   result array handed to the caller plus per-request refs and stage
   closures, O(wave) and independent of candidate count and DOF
   (measured ~372 words for wave=8, ~46/request), where the scored work
   is wave×4 full-chain FK evaluations.  The bound pins the per-request
   constant without chasing exact closure sizes. *)
let test_choose_wave_bounded () =
  let dof = 30 and wave = 8 in
  let chain = Robots.eval_chain ~dof in
  let library = Dadu_service.Posture_library.build ~chain ~count:128 ~seed:7 () in
  let module Sel = Dadu_service.Seed_select in
  let cache_seed = Some (Array.make dof 0.1) in
  let specs =
    Array.init wave (fun i ->
        {
          Sel.ordinal = i;
          chain;
          tx = 0.8 +. (0.01 *. float_of_int i);
          ty = -0.3;
          tz = 1.1;
          theta0 = Array.make dof 0.2;
          session_seed = None;
          cache_seed;
          library = Some library;
          library_index =
            Dadu_service.Posture_library.nearest_index library ~x:0.8 ~y:(-0.3)
              ~z:1.1;
          candidates = 4;
          scale = 0.1;
          dst = Array.make dof 0.;
        })
  in
  let sel = Sel.create () in
  let wave_call () = ignore (Sel.choose_wave sel specs) in
  wave_call ();
  (* warm *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 500 do
    wave_call ()
  done;
  let w1 = Gc.minor_words () in
  let per_wave = (w1 -. w0) /. 500. in
  Alcotest.(check bool)
    (Printf.sprintf "choose_wave words per wave bounded (%.1f)" per_wave)
    true (per_wave < 100. *. float_of_int wave)

(* Parallel candidate evaluation allocates by design — the domain pool
   builds per-wave task bookkeeping — so it gets a documented slack bound
   rather than zero: the point is that the per-candidate FK work itself
   stays out of the allocator, leaving only O(pool) scheduling words.
   100 DOF keeps dof×Max above the dispatch cutover so the pool path (not
   the sequential fallback) is what gets measured. *)
let test_quick_ik_parallel_bounded () =
  let p = unreachable_problem ~dof:100 in
  let ws = Workspace.create ~dof:100 in
  let pool = Dadu_util.Domain_pool.create 2 in
  let per_iter =
    words_per_iter ~short:100 ~long:400 (fun config ->
        ignore
          (Quick_ik.solve ~speculations:64 ~mode:(Quick_ik.Parallel pool)
             ~workspace:ws ~config p))
  in
  Dadu_util.Domain_pool.shutdown pool;
  Alcotest.(check bool)
    (Printf.sprintf "parallel mode bounded (%.1f words/iter)" per_iter)
    true
    (per_iter < 2000.)

(* Lockstep steady state: once a mega-batch's planes and per-lane
   workspaces are warm, advancing lanes must allocate exactly nothing
   per lane-iteration — the sweep loop, plane syncs (blits and scalar
   stores) and retire scans all stay out of the allocator.  Same bracket
   technique as [words_per_iter], but iteration counts live in the
   megabatch's config, so the two run lengths use two pre-warmed banks
   and the per-call/per-lane constants cancel in the difference. *)
let megabatch_words_per_lane_iter ~dof ~speculations =
  let lanes = 4 in
  let problems = Array.make lanes (unreachable_problem ~dof) in
  let mk iters = Megabatch.create ~capacity:lanes ~speculations ~config:(config iters) () in
  let solve mb = ignore (Megabatch.solve_all mb problems) in
  let short = mk 200 and long = mk 1200 in
  solve short;
  solve long;
  (* warm *)
  let w0 = Gc.minor_words () in
  solve short;
  let w1 = Gc.minor_words () in
  solve long;
  let w2 = Gc.minor_words () in
  ((w2 -. w1) -. (w1 -. w0)) /. float_of_int ((1200 - 200) * lanes)

let check_megabatch_zero ~dof ~speculations () =
  Alcotest.(check (float 0.))
    (Printf.sprintf "megabatch %ddof: minor words per lane-iteration" dof)
    0.
    (megabatch_words_per_lane_iter ~dof ~speculations)

(* Reusing one workspace across many solves must not leak: total minor
   allocation for N repeat solves of the same problem stays constant per
   solve (result record + driver closures), independent of iteration
   count ceilings reached earlier. *)
let test_workspace_reuse_constant_per_solve () =
  let p = unreachable_problem ~dof:30 in
  let ws = Workspace.create ~dof:30 in
  let solve () = ignore (Quick_ik.solve ~speculations:64 ~workspace:ws ~config:(config 25) p) in
  solve ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10 do
    solve ()
  done;
  let w1 = Gc.minor_words () in
  let per_solve = (w1 -. w0) /. 10. in
  Alcotest.(check bool)
    (Printf.sprintf "per-solve constant is small (%.0f words)" per_solve)
    true
    (per_solve < 500.)

let () =
  Alcotest.run "dadu_alloc"
    [
      ( "steady-state zero allocation",
        [
          Alcotest.test_case "speculation kernel sweep" `Quick
            test_speculation_kernel_zero;
          Alcotest.test_case "quick_ik 64 spec, 12 DOF" `Quick test_quick_ik_12dof;
          Alcotest.test_case "quick_ik 64 spec, 30 DOF" `Quick test_quick_ik_30dof;
          Alcotest.test_case "quick_ik 16 spec, 100 DOF" `Slow test_quick_ik_100dof;
          Alcotest.test_case "jt_serial 30 DOF" `Quick test_jt_serial;
          Alcotest.test_case "jt_buss 30 DOF" `Quick test_jt_buss;
          Alcotest.test_case "jt_linesearch 30 DOF" `Quick test_jt_linesearch;
          Alcotest.test_case "dls 30 DOF" `Quick test_dls;
          Alcotest.test_case "megabatch lockstep, 12 DOF" `Quick
            (check_megabatch_zero ~dof:12 ~speculations:64);
          Alcotest.test_case "megabatch lockstep, 30 DOF" `Quick
            (check_megabatch_zero ~dof:30 ~speculations:64);
          Alcotest.test_case "megabatch lockstep, 100 DOF" `Slow
            (check_megabatch_zero ~dof:100 ~speculations:16);
          Alcotest.test_case "speculative seed selection, 30 DOF" `Quick
            test_seed_select_zero;
          Alcotest.test_case "wave-fused row-scoring kernel, 30 DOF" `Quick
            test_score_rows_kernel_zero;
        ] );
      ( "bounded allocation",
        [
          Alcotest.test_case "quick_ik parallel mode" `Slow
            test_quick_ik_parallel_bounded;
          Alcotest.test_case "choose_wave, constant per wave" `Quick
            test_choose_wave_bounded;
          Alcotest.test_case "workspace reuse, constant per solve" `Quick
            test_workspace_reuse_constant_per_solve;
        ] );
    ]
