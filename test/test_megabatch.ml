(* Differential tests for the lockstep mega-batch solver.

   The contract under test is lane identity: every lane of
   [Megabatch.solve_all] must be *bit-identical* — θ vector, iteration
   count, final error, status — to the serial per-request oracle
   [Quick_ik.solve] on the same problem, whatever the batch composition
   (mixed DOFs, 1-64 lanes), the lane capacity (retire-and-refill
   schedules), or the sweep pool size.  Equality on floats is by bits
   ([Int64.bits_of_float]), so even a 1-ulp drift fails. *)

open Dadu_core
open Dadu_kinematics
module Ws = Dadu_core.Workspace
module Rng = Dadu_util.Rng
module Pool = Dadu_util.Domain_pool

let bits = Int64.bits_of_float

let theta_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
       !ok
     end

let explain_mismatch name i (o : Ik.result) (m : Ik.result) =
  Printf.sprintf
    "%s: lane %d diverged from oracle (status %s vs %s, iters %d vs %d, err %h vs %h, theta %s)"
    name i
    (Format.asprintf "%a" Ik.pp_status o.Ik.status)
    (Format.asprintf "%a" Ik.pp_status m.Ik.status)
    o.Ik.iterations m.Ik.iterations o.Ik.error m.Ik.error
    (if theta_equal o.Ik.theta m.Ik.theta then "equal" else "DIFFERS")

let result_equal (a : Ik.result) (b : Ik.result) =
  a.Ik.status = b.Ik.status
  && a.Ik.iterations = b.Ik.iterations
  && a.Ik.speculations = b.Ik.speculations
  && bits a.Ik.error = bits b.Ik.error
  && theta_equal a.Ik.theta b.Ik.theta

(* iteration caps stay small: the pin is trace identity, not convergence *)
let config = { Ik.default_config with Ik.max_iterations = 120 }

let oracle ~speculations p =
  let workspace = Ws.create ~dof:(Chain.dof p.Ik.chain) in
  Quick_ik.solve ~speculations ~workspace ~config p

(* A mixed-DOF batch: every problem draws its own chain width from
   [3, 100] and its own reachable target / random start. *)
let mixed_batch ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let dof = 3 + Rng.int rng 98 in
      Ik.random_problem rng (Robots.eval_chain ~dof))

let check_against_oracle name ~speculations ~capacity ?mode problems =
  let mb = Megabatch.create ~capacity ~speculations ~config () in
  let got = Megabatch.solve_all ?mode mb problems in
  let want = Array.map (oracle ~speculations) problems in
  Alcotest.(check int) (name ^ ": arity") (Array.length want) (Array.length got);
  Array.iteri
    (fun i w ->
      if not (result_equal w got.(i)) then
        Alcotest.fail (explain_mismatch name i w got.(i)))
    want

(* ---- pinned DOFs of the acceptance criterion ---- *)

let test_lane_identity_pinned_dofs () =
  List.iter
    (fun dof ->
      let rng = Rng.create (1000 + dof) in
      let problems =
        Array.init 6 (fun _ -> Ik.random_problem rng (Robots.eval_chain ~dof))
      in
      check_against_oracle
        (Printf.sprintf "dof %d sequential" dof)
        ~speculations:64 ~capacity:4 problems;
      List.iter
        (fun pool_size ->
          let pool = Pool.create pool_size in
          Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
          check_against_oracle
            (Printf.sprintf "dof %d pool %d" dof pool_size)
            ~speculations:64 ~capacity:4
            ~mode:(Megabatch.Parallel pool) problems)
        [ 1; 2; 4 ])
    [ 12; 30; 100 ]

(* ---- retire-and-refill ---- *)

let test_refill_orderings () =
  let problems = mixed_batch ~seed:7 20 in
  (* capacity 1 degenerates to strictly serial; 64 packs everything at
     once; the middle sizes churn through refills *)
  List.iter
    (fun capacity ->
      check_against_oracle
        (Printf.sprintf "capacity %d" capacity)
        ~speculations:64 ~capacity problems)
    [ 1; 2; 3; 5; 64 ]

let test_capacity_independence () =
  let problems = mixed_batch ~seed:13 17 in
  let solve capacity =
    Megabatch.solve_all
      (Megabatch.create ~capacity ~speculations:32 ~config ())
      problems
  in
  let base = solve 1 in
  List.iter
    (fun capacity ->
      let other = solve capacity in
      Array.iteri
        (fun i r ->
          if not (result_equal base.(i) r) then
            Alcotest.fail
              (explain_mismatch
                 (Printf.sprintf "capacity 1 vs %d" capacity)
                 i base.(i) r))
        other)
    [ 2; 4; 16 ]

let test_retirement_accounting () =
  let problems = mixed_batch ~seed:3 12 in
  let capacity = 3 in
  let mb = Megabatch.create ~capacity ~speculations:16 ~config () in
  let retired = Array.make (Array.length problems) 0 in
  let lanes_seen = Hashtbl.create 8 in
  let results =
    Megabatch.solve_all
      ~on_retire:(fun ~lane ~problem r ->
        retired.(problem) <- retired.(problem) + 1;
        Hashtbl.replace lanes_seen lane ();
        (* at retire time the planes still hold this lane's terminal
           state: θ row bit-equal to the result, problem index mapped *)
        Alcotest.(check int)
          "problem plane maps lane" problem
          (Megabatch.problem_plane mb).(lane);
        Alcotest.(check bool) "lane active at retire" true
          (Megabatch.active_mask mb).(lane);
        let stride = Megabatch.stride mb in
        let plane = Megabatch.theta_plane mb in
        let dof = Array.length r.Ik.theta in
        for j = 0 to dof - 1 do
          if bits plane.((lane * stride) + j) <> bits r.Ik.theta.(j) then
            Alcotest.fail "theta plane row differs from retired result"
        done;
        Alcotest.(check int)
          "iterations plane" r.Ik.iterations
          (Megabatch.iterations_plane mb).(lane))
      mb problems
  in
  Alcotest.(check int) "all problems answered" (Array.length problems)
    (Array.length results);
  Array.iteri
    (fun i n ->
      Alcotest.(check int) (Printf.sprintf "problem %d retired once" i) 1 n)
    retired;
  Alcotest.(check bool) "no lane beyond capacity used" true
    (Hashtbl.fold (fun l () acc -> acc && l >= 0 && l < capacity) lanes_seen true)

let test_planes_shape () =
  let problems = mixed_batch ~seed:21 9 in
  let mb = Megabatch.create ~capacity:4 ~speculations:8 ~config () in
  let _ = Megabatch.solve_all mb problems in
  let max_dof =
    Array.fold_left
      (fun acc (p : Ik.problem) -> Stdlib.max acc (Chain.dof p.Ik.chain))
      1 problems
  in
  Alcotest.(check int) "stride is widest dof" max_dof (Megabatch.stride mb);
  Alcotest.(check int) "theta plane size" (4 * max_dof)
    (Array.length (Megabatch.theta_plane mb));
  Alcotest.(check bool) "all lanes free after the batch" true
    (Array.for_all not (Megabatch.active_mask mb));
  Alcotest.(check bool) "problem plane cleared" true
    (Array.for_all (fun p -> p = -1) (Megabatch.problem_plane mb))

let test_create_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Megabatch.create: capacity must be positive") (fun () ->
      ignore (Megabatch.create ~capacity:0 ()));
  Alcotest.check_raises "speculations 0"
    (Invalid_argument "Megabatch.create: speculations must be positive")
    (fun () -> ignore (Megabatch.create ~speculations:0 ()))

let test_empty_batch () =
  let mb = Megabatch.create () in
  Alcotest.(check int) "empty in, empty out" 0
    (Array.length (Megabatch.solve_all mb [||]))

(* guard on: lanes must retire Diverged exactly when the oracle does *)
let test_guarded_lane_identity () =
  let config =
    { config with Ik.guard = Some { Ik.explode_factor = 10.; explode_patience = 3 } }
  in
  let rng = Rng.create 99 in
  let problems =
    Array.init 10 (fun _ ->
        let dof = 3 + Rng.int rng 40 in
        Ik.random_problem rng (Robots.eval_chain ~dof))
  in
  let mb = Megabatch.create ~capacity:4 ~speculations:32 ~config () in
  let got = Megabatch.solve_all mb problems in
  Array.iteri
    (fun i p ->
      let workspace = Ws.create ~dof:(Chain.dof p.Ik.chain) in
      let w = Quick_ik.solve ~speculations:32 ~workspace ~config p in
      if not (result_equal w got.(i)) then
        Alcotest.fail (explain_mismatch "guarded" i w got.(i)))
    problems

(* ---- the QCheck sweep of the satellite: random mixed-DOF batches,
   random capacities, sequential and pooled ---- *)

let qcheck_lane_identity =
  QCheck.Test.make ~count:25
    ~name:"megabatch lane == serial oracle (random batches, bitwise)"
    QCheck.(triple (int_range 1 64) (int_range 1 8) small_int)
    (fun (lanes, capacity, seed) ->
      let problems = mixed_batch ~seed:(seed + (lanes * 131)) lanes in
      let mb = Megabatch.create ~capacity ~speculations:16 ~config () in
      let got = Megabatch.solve_all mb problems in
      Array.for_all2
        (fun p r -> result_equal (oracle ~speculations:16 p) r)
        problems got)

let qcheck_pool_identity =
  QCheck.Test.make ~count:10
    ~name:"megabatch pooled sweep == sequential sweep (bitwise)"
    QCheck.(pair (int_range 1 24) small_int)
    (fun (lanes, seed) ->
      let problems = mixed_batch ~seed:(seed + 7919) lanes in
      let solve mode =
        Megabatch.solve_all ?mode
          (Megabatch.create ~capacity:4 ~speculations:16 ~config ())
          problems
      in
      let seq = solve None in
      List.for_all
        (fun pool_size ->
          let pool = Pool.create pool_size in
          Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
          let par = solve (Some (Megabatch.Parallel pool)) in
          Array.for_all2 result_equal seq par)
        [ 2; 4 ])

(* ---- lockstep x speculative seeding (service level) ---- *)

(* Seed selection runs in the scheduler's serial prepare phase, so the
   lockstep mega-batch path must see exactly the rewritten starts the
   per-request path sees: with a posture library and multi-seed
   speculation enabled, lockstep replies stay bit-identical to the
   per-request path. *)
let test_lockstep_with_speculative_seeding () =
  let module Svc = Dadu_service.Service in
  let module Metrics = Dadu_service.Metrics in
  let chain = Robots.eval_chain ~dof:12 in
  let library =
    Dadu_service.Posture_library.build ~chain ~count:64 ~seed:4 ()
  in
  let rng = Rng.create 271 in
  let problems = Array.init 24 (fun _ -> Ik.random_problem rng chain) in
  let strip = function
    | Svc.Solved
        {
          result;
          solver;
          fallbacks;
          cache_hit;
          session_hit;
          deadline_exceeded;
          breaker_skips;
          retries;
          retry_converged;
          trail;
          latency_s = _;
        } ->
      `Solved
        ( result,
          solver,
          fallbacks,
          cache_hit,
          session_hit,
          deadline_exceeded,
          breaker_skips,
          retries,
          retry_converged,
          trail )
    | Svc.Rejected invalid -> `Rejected invalid
    | Svc.Faulted msg -> `Faulted msg
  in
  let run lockstep =
    let config =
      {
        Svc.default_config with
        Svc.max_iterations = 250;
        chunk = 7;
        lockstep;
        seed_library = Some library;
        seed_candidates = 4;
      }
    in
    let s = Svc.create ~config () in
    let replies = Array.map strip (Svc.solve_batch s problems) in
    (replies, (Svc.metrics s).Metrics.lockstep_lanes)
  in
  let per_request, lanes_off = run false in
  let lockstep, lanes_on = run true in
  Alcotest.(check int) "per-request path uses no lockstep lanes" 0 lanes_off;
  Alcotest.(check bool) "lockstep path actually engaged" true (lanes_on > 0);
  Alcotest.(check bool)
    "lockstep replies bit-identical to per-request with speculation on" true
    (per_request = lockstep)

let () =
  Alcotest.run "dadu_megabatch"
    [
      ( "lane identity",
        [
          Alcotest.test_case "pinned DOFs 12/30/100, pools 1/2/4" `Slow
            test_lane_identity_pinned_dofs;
          Alcotest.test_case "guarded lanes" `Quick test_guarded_lane_identity;
          Alcotest.test_case "lockstep x speculative seeding" `Slow
            test_lockstep_with_speculative_seeding;
          QCheck_alcotest.to_alcotest qcheck_lane_identity;
          QCheck_alcotest.to_alcotest qcheck_pool_identity;
        ] );
      ( "retire and refill",
        [
          Alcotest.test_case "capacities 1/2/3/5/64 vs oracle" `Slow
            test_refill_orderings;
          Alcotest.test_case "capacity independence" `Quick
            test_capacity_independence;
          Alcotest.test_case "retirement accounting + plane rows" `Quick
            test_retirement_accounting;
        ] );
      ( "planes and edges",
        [
          Alcotest.test_case "plane shape and masks" `Quick test_planes_shape;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
        ] );
    ]
