(* Tests for the Atom / TX1 platform cost models. *)

open Dadu_platforms
module Cost = Dadu_core.Cost

let test_platform_constants () =
  (* paper Table 3, used as given *)
  Alcotest.(check (float 1e-9)) "Atom power" 10.0 Platform.atom.Platform.avg_power_w;
  Alcotest.(check (float 1e-9)) "TX1 power" 4.8 Platform.tx1.Platform.avg_power_w;
  Alcotest.(check (float 1e-9)) "IKAcc power" 0.1586 Platform.ikacc.Platform.avg_power_w;
  Alcotest.(check (float 1.)) "Atom frequency" 1.86e9 Platform.atom.Platform.frequency_hz

let test_platform_energy () =
  Alcotest.(check (float 1e-12)) "E = P t" 5. (Platform.energy Platform.atom ~time_s:0.5)

let quick_cost = Cost.quick_ik ~dof:50 ~speculations:64

let test_atom_linear_in_iterations () =
  let t1 = Atom.time_s ~cost:quick_cost ~iterations:10. () in
  let t2 = Atom.time_s ~cost:quick_cost ~iterations:20. () in
  Alcotest.(check (float 1e-12)) "linear" (2. *. t1) t2

let test_atom_zero () =
  Alcotest.(check (float 0.)) "zero iterations" 0.
    (Atom.time_s ~cost:quick_cost ~iterations:0. ())

let test_atom_negative () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Atom.time_s ~cost:quick_cost ~iterations:(-1.) ());
       false
     with Invalid_argument _ -> true)

let test_atom_serializes_parallel_work () =
  (* a CPU pays for speculation work in full *)
  let c1 = Cost.quick_ik ~dof:50 ~speculations:16 in
  let c2 = Cost.quick_ik ~dof:50 ~speculations:64 in
  let t1 = Atom.time_s ~cost:c1 ~iterations:100. () in
  let t2 = Atom.time_s ~cost:c2 ~iterations:100. () in
  Alcotest.(check bool) "4x speculations ~ 4x time" true (t2 > 3. *. t1)

let test_atom_energy () =
  Alcotest.(check (float 1e-12)) "10 W" 10. (Atom.energy_j ~time_s:1.)

let test_tx1_overhead_floor () =
  let t = Tx1.time_s ~cost:quick_cost ~iterations:100. () in
  Alcotest.(check bool) "at least per-iteration overhead" true
    (t >= 100. *. Tx1.default_params.Tx1.per_iteration_overhead_s)

let test_tx1_monotone_in_cost () =
  let c_small = Cost.quick_ik ~dof:12 ~speculations:64 in
  let c_large = Cost.quick_ik ~dof:100 ~speculations:64 in
  let t_small = Tx1.time_s ~cost:c_small ~iterations:50. () in
  let t_large = Tx1.time_s ~cost:c_large ~iterations:50. () in
  Alcotest.(check bool) "more work, more time" true (t_large > t_small)

let test_tx1_beats_atom_on_speculation () =
  (* the whole point of the GPU port: parallel speculation work is much
     cheaper there *)
  let iterations = 100. in
  let atom = Atom.time_s ~cost:quick_cost ~iterations () in
  let tx1 = Tx1.time_s ~cost:quick_cost ~iterations () in
  Alcotest.(check bool) "TX1 faster" true (tx1 < atom)

let test_tx1_custom_params () =
  let params =
    { Tx1.per_iteration_overhead_s = 1e-3; host_flops = 1e8; gpu_flops = 1e9 }
  in
  let t = Tx1.time_s ~params ~cost:quick_cost ~iterations:10. () in
  Alcotest.(check bool) "overhead dominates" true (t >= 10e-3)

let test_platform_ordering_at_100dof () =
  (* Table 2's ordering: IKAcc < TX1 < Atom for the same Quick-IK run *)
  let cost = Cost.quick_ik ~dof:100 ~speculations:64 in
  let iterations = 50. in
  let atom = Atom.time_s ~cost ~iterations () in
  let tx1 = Tx1.time_s ~cost ~iterations () in
  let ikacc =
    Dadu_accel.Ikacc.time_for_iterations ~dof:100 ~speculations:64 ~iterations:50 ()
  in
  Alcotest.(check bool) "IKAcc < TX1" true (ikacc < tx1);
  Alcotest.(check bool) "TX1 < Atom" true (tx1 < atom)

let test_tx1_per_iteration_ratio_matches_paper () =
  (* The paper's Table 2 @ 100 DOF: TX1/IKAcc = 311.74/12.11 ≈ 26x at equal
     iteration counts.  Our calibrated models must keep that per-iteration
     ratio in the 20-40x band. *)
  let cost = Cost.quick_ik ~dof:100 ~speculations:64 in
  let tx1 = Tx1.time_s ~cost ~iterations:1. () in
  let ikacc =
    Dadu_accel.Ikacc.time_for_iterations ~dof:100 ~speculations:64 ~iterations:1 ()
  in
  let ratio = tx1 /. ikacc in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.1f in [20, 40]" ratio)
    true
    (ratio > 20. && ratio < 40.)

let () =
  Alcotest.run "dadu_platforms"
    [
      ( "platform",
        [
          Alcotest.test_case "paper constants" `Quick test_platform_constants;
          Alcotest.test_case "energy" `Quick test_platform_energy;
        ] );
      ( "atom",
        [
          Alcotest.test_case "linear in iterations" `Quick test_atom_linear_in_iterations;
          Alcotest.test_case "zero" `Quick test_atom_zero;
          Alcotest.test_case "negative rejected" `Quick test_atom_negative;
          Alcotest.test_case "serializes speculation" `Quick
            test_atom_serializes_parallel_work;
          Alcotest.test_case "energy" `Quick test_atom_energy;
        ] );
      ( "tx1",
        [
          Alcotest.test_case "overhead floor" `Quick test_tx1_overhead_floor;
          Alcotest.test_case "monotone in cost" `Quick test_tx1_monotone_in_cost;
          Alcotest.test_case "beats Atom" `Quick test_tx1_beats_atom_on_speculation;
          Alcotest.test_case "custom params" `Quick test_tx1_custom_params;
        ] );
      ( "cross-platform",
        [
          Alcotest.test_case "Table 2 ordering" `Quick test_platform_ordering_at_100dof;
          Alcotest.test_case "TX1/IKAcc ratio band" `Quick
            test_tx1_per_iteration_ratio_matches_paper;
        ] );
    ]
