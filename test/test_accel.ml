(* Tests for the IKAcc accelerator simulator: cycle models, scheduler,
   selector, energy, and functional equivalence to software Quick-IK. *)

open Dadu_accel
module Ik = Dadu_core.Ik
module Rng = Dadu_util.Rng
module Robots = Dadu_kinematics.Robots

let qcheck = QCheck_alcotest.to_alcotest
let cfg = Config.default

(* ---- Config ---- *)

let test_config_defaults () =
  Alcotest.(check int) "paper SSU count" 32 cfg.Config.num_ssus;
  Alcotest.(check (float 1.)) "1 GHz" 1e9 cfg.Config.frequency_hz;
  Alcotest.(check (float 1e-9)) "paper area" 2.27 cfg.Config.area_mm2;
  Config.validate cfg

let test_config_with_ssus () =
  Alcotest.(check int) "override" 8 (Config.with_ssus 8 cfg).Config.num_ssus

let test_config_invalid () =
  Alcotest.(check bool) "zero SSUs rejected" true
    (try
       Config.validate (Config.with_ssus 0 cfg);
       false
     with Invalid_argument _ -> true)

(* ---- Fku / Spu / Ssu ---- *)

let test_fku_linear () =
  let c10 = Fku.chain_cycles cfg ~dof:10 in
  let c20 = Fku.chain_cycles cfg ~dof:20 in
  let c30 = Fku.chain_cycles cfg ~dof:30 in
  Alcotest.(check int) "constant increment" (c20 - c10) (c30 - c20)

let test_fku_formula () =
  let fill = cfg.Config.dh_cycles + cfg.Config.matmul_cycles in
  let steady = Stdlib.max cfg.Config.dh_cycles cfg.Config.matmul_cycles in
  Alcotest.(check int) "pipelined chain" (fill + (9 * steady)) (Fku.chain_cycles cfg ~dof:10)

let test_fku_invalid () =
  Alcotest.(check bool) "dof 0 rejected" true
    (try
       ignore (Fku.chain_cycles cfg ~dof:0);
       false
     with Invalid_argument _ -> true)

let test_spu_ii () =
  Alcotest.(check int) "II = slowest stage" cfg.Config.matmul_cycles
    (Spu.initiation_interval cfg)

let test_spu_formula () =
  let fill = Array.fold_left ( + ) 0 (Spu.stage_latencies cfg) in
  Alcotest.(check int) "pipeline fill + steady + alpha"
    (fill + (49 * Spu.initiation_interval cfg) + cfg.Config.alpha_cycles)
    (Spu.iteration_cycles cfg ~dof:50)

let test_spu_stages () =
  Alcotest.(check int) "four stages (Fig. 3)" 4 (Array.length (Spu.stage_latencies cfg))

let test_ssu_formula () =
  let dof = 50 in
  let update = (dof + cfg.Config.update_lanes - 1) / cfg.Config.update_lanes in
  Alcotest.(check int) "candidate cycles"
    (1 + update + Fku.chain_cycles cfg ~dof + cfg.Config.error_cycles)
    (Ssu.candidate_cycles cfg ~dof)

(* ---- Scheduler ---- *)

let test_plan_exact () =
  let p = Scheduler.plan cfg ~speculations:64 in
  Alcotest.(check int) "schedules" 2 p.Scheduler.schedules;
  Alcotest.(check int) "full rounds" 2 p.Scheduler.full_rounds;
  Alcotest.(check int) "last round full" 32 p.Scheduler.last_round_ssus

let test_plan_remainder () =
  let p = Scheduler.plan cfg ~speculations:40 in
  Alcotest.(check int) "schedules" 2 p.Scheduler.schedules;
  Alcotest.(check int) "full rounds" 1 p.Scheduler.full_rounds;
  Alcotest.(check int) "remainder" 8 p.Scheduler.last_round_ssus

let test_plan_small () =
  let p = Scheduler.plan cfg ~speculations:5 in
  Alcotest.(check int) "one schedule" 1 p.Scheduler.schedules;
  Alcotest.(check int) "five busy" 5 p.Scheduler.last_round_ssus

let test_assignments_cover =
  QCheck.Test.make ~name:"assignments cover every candidate once" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 1 64)) (fun (speculations, ssus) ->
      let config = Config.with_ssus ssus cfg in
      let rounds = Scheduler.assignments config ~speculations in
      let flat = List.concat rounds in
      List.sort compare flat = List.init speculations Fun.id
      && List.for_all (fun round -> List.length round <= ssus) rounds)

let test_iteration_cycles_decomposition () =
  let dof = 30 and speculations = 64 in
  let per_round =
    cfg.Config.broadcast_cycles + Ssu.candidate_cycles cfg ~dof + cfg.Config.select_cycles
  in
  Alcotest.(check int) "spu + rounds"
    (Spu.iteration_cycles cfg ~dof + (2 * per_round))
    (Scheduler.iteration_cycles cfg ~dof ~speculations)

let test_ssu_busy_equals_speculations () =
  let dof = 25 in
  Alcotest.(check int) "busy = specs x candidate"
    (64 * Ssu.candidate_cycles cfg ~dof)
    (Scheduler.ssu_busy_cycles cfg ~dof ~speculations:64)

let test_more_ssus_never_slower =
  QCheck.Test.make ~name:"more SSUs never increases iteration cycles" ~count:100
    QCheck.(pair (int_range 1 128) (int_range 1 64)) (fun (speculations, ssus) ->
      let a =
        Scheduler.iteration_cycles (Config.with_ssus ssus cfg) ~dof:20 ~speculations
      in
      let b =
        Scheduler.iteration_cycles (Config.with_ssus (ssus * 2) cfg) ~dof:20 ~speculations
      in
      b <= a)

(* ---- Selector ---- *)

let test_selector_best () =
  Alcotest.(check int) "min index" 2 (Selector.best [| 3.; 1.5; 0.2; 0.9 |])

let test_selector_ties () =
  Alcotest.(check int) "tie to smaller k" 1 (Selector.best [| 5.; 2.; 2.; 2. |])

let test_selector_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Selector.best: no candidates")
    (fun () -> ignore (Selector.best [||]))

let test_selector_fold_rounds =
  QCheck.Test.make ~name:"fold_rounds = best of concatenation" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 5)
        (array_of_size Gen.(int_range 1 10) (float_range 0. 100.)))
    (fun rounds ->
      let flat = Array.concat rounds in
      Array.length flat = 0 || Selector.fold_rounds rounds = Selector.best flat)

(* ---- Energy ---- *)

let test_energy_zero () =
  let b = Energy.of_activity cfg ~total_cycles:0 ~spu_busy_cycles:0 ~ssu_busy_cycles:0 in
  Alcotest.(check (float 0.)) "zero energy" 0. b.Energy.total_j

let test_energy_additive () =
  let b =
    Energy.of_activity cfg ~total_cycles:1000 ~spu_busy_cycles:400 ~ssu_busy_cycles:5000
  in
  Alcotest.(check (float 1e-15)) "parts sum"
    (b.Energy.leakage_j +. b.Energy.spu_j +. b.Energy.ssu_j)
    b.Energy.total_j

let test_energy_leakage_floor () =
  let b =
    Energy.of_activity cfg ~total_cycles:1000 ~spu_busy_cycles:0 ~ssu_busy_cycles:0
  in
  Alcotest.(check (float 1e-12)) "idle power = leakage" cfg.Config.leakage_w
    b.Energy.avg_power_w

let test_energy_negative_rejected () =
  Alcotest.(check bool) "negative cycles rejected" true
    (try
       ignore (Energy.of_activity cfg ~total_cycles:(-1) ~spu_busy_cycles:0 ~ssu_busy_cycles:0);
       false
     with Invalid_argument _ -> true)

(* ---- Fixed-point datapath ---- *)

let test_fixed_quantize_grid () =
  let f = Fixed.q8_8 in
  Alcotest.(check (float 1e-12)) "on grid" 0.5 (Fixed.quantize f 0.5);
  Alcotest.(check (float 1e-12)) "rounds" 0.50390625 (Fixed.quantize f 0.505);
  Alcotest.(check (float 1e-12)) "resolution" (1. /. 256.) (Fixed.resolution f)

let test_fixed_saturates () =
  let f = Fixed.q8_8 in
  Alcotest.(check (float 1e-9)) "positive saturation" (Fixed.max_value f)
    (Fixed.quantize f 1e9);
  Alcotest.(check (float 1e-9)) "negative saturation" (-.Fixed.max_value f)
    (Fixed.quantize f (-1e9))

let test_fixed_word_width () =
  Alcotest.(check int) "Q8.16 is 25 bits" 25 (Fixed.word_width Fixed.q8_16);
  Alcotest.(check int) "Q8.24 is 33 bits" 33 (Fixed.word_width Fixed.q8_24)

let test_fixed_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"quantize is idempotent" ~count:200
       QCheck.(float_range (-200.) 200.) (fun x ->
         let q = Fixed.quantize Fixed.q8_16 x in
         Fixed.quantize Fixed.q8_16 q = q))

let test_fixed_fk_error_shrinks_with_bits () =
  let chain = Robots.eval_chain ~dof:25 in
  let eval fmt =
    let rng = Rng.create 55 in
    (Fixed.evaluate ~samples:30 rng fmt chain).Fixed.max_error
  in
  let e8 = eval Fixed.q8_8 and e16 = eval Fixed.q8_16 and e24 = eval Fixed.q8_24 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.2e > %.2e > %.2e" e8 e16 e24)
    true
    (e8 > e16 && e16 > e24)

let test_fixed_q24_sufficient_for_paper_accuracy () =
  (* with 24 fractional bits the quantized FKU cannot disturb candidate
     selection at the paper's 1e-2 m threshold, even at 100 DOF *)
  let chain = Robots.eval_chain ~dof:100 in
  let rng = Rng.create 56 in
  let report = Fixed.evaluate ~samples:20 rng Fixed.q8_24 chain in
  Alcotest.(check bool)
    (Printf.sprintf "max err %.2e" report.Fixed.max_error)
    true
    (Fixed.sufficient report ~accuracy:1e-2)

let test_fixed_error_zero_in_float_limit () =
  (* a very wide format reproduces the float FK to tight tolerance *)
  let wide = { Fixed.integer_bits = 10; frac_bits = 40 } in
  let chain = Robots.eval_chain ~dof:12 in
  let rng = Rng.create 57 in
  let report = Fixed.evaluate ~samples:10 rng wide chain in
  Alcotest.(check bool) "negligible error" true (report.Fixed.max_error < 1e-8)

(* ---- Trace ---- *)

let test_trace_makespan_matches_analytic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"trace makespan = analytic iteration cycles" ~count:100
       QCheck.(pair (int_range 1 128) (int_range 2 120)) (fun (speculations, dof) ->
         let events = Trace.iteration cfg ~dof ~speculations in
         Trace.makespan events = Scheduler.iteration_cycles cfg ~dof ~speculations))

let test_trace_ssu_busy_matches_analytic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"trace SSU busy = analytic busy cycles" ~count:100
       QCheck.(pair (int_range 1 128) (int_range 2 120)) (fun (speculations, dof) ->
         let events = Trace.iteration cfg ~dof ~speculations in
         Trace.busy_cycles ~prefix:"SSU" events
         = Scheduler.ssu_busy_cycles cfg ~dof ~speculations))

let test_trace_candidates_covered () =
  let events = Trace.iteration cfg ~dof:20 ~speculations:50 in
  let candidates =
    List.filter_map (fun e -> e.Trace.candidate) events |> List.sort compare
  in
  Alcotest.(check (list int)) "every candidate traced" (List.init 50 Fun.id) candidates

let test_trace_spu_first () =
  let events = Trace.iteration cfg ~dof:20 ~speculations:64 in
  (match events with
  | first :: _ ->
    Alcotest.(check string) "SPU leads" "SPU" first.Trace.unit_name;
    Alcotest.(check int) "starts at 0" 0 first.Trace.start_cycle
  | [] -> Alcotest.fail "empty trace");
  List.iter
    (fun e ->
      Alcotest.(check bool) "events well-formed" true
        (e.Trace.end_cycle > e.Trace.start_cycle))
    events

let test_trace_render () =
  let events = Trace.iteration cfg ~dof:10 ~speculations:8 in
  let s = Trace.render events in
  Alcotest.(check bool) "renders SPU row" true
    (Astring.String.is_infix ~affix:"SPU" s);
  Alcotest.(check bool) "renders gantt marks" true
    (Astring.String.is_infix ~affix:"#" s)

(* ---- Datapath (fused SPU pass, paper section 5.3) ---- *)

let test_datapath_matches_software =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fused serial pass = software Jacobian path" ~count:100
       QCheck.(int_range 0 100_000) (fun seed ->
         let rng = Rng.create seed in
         let dof = 2 + Rng.int rng 20 in
         let chain = Robots.eval_chain ~dof in
         let theta = Dadu_kinematics.Target.random_config rng chain in
         let target = Dadu_kinematics.Target.reachable rng chain in
         let end_transform = Dadu_kinematics.Fk.pose chain theta in
         let out = Datapath.serial_pass chain ~theta ~end_transform ~target in
         (* software path: materialized Jacobian + Eq. 8 *)
         let open Dadu_linalg in
         let j = Dadu_kinematics.Jacobian.position_jacobian chain theta in
         let e = Vec3.sub target (Dadu_kinematics.Fk.position chain theta) in
         let dtheta = Mat.mul_transpose_vec j (Vec3.to_vec e) in
         let alpha = Dadu_core.Alpha.buss ~j ~e ~dtheta_base:dtheta in
         Vec.approx_equal ~tol:1e-12 out.Datapath.dtheta_base dtheta
         && Float.abs (out.Datapath.alpha_base -. alpha)
            <= 1e-12 *. Float.max 1. (Float.abs alpha)))

let test_datapath_prismatic () =
  let chain = Robots.scara () in
  let rng = Rng.create 61 in
  let theta = Dadu_kinematics.Target.random_config rng chain in
  let target = Dadu_kinematics.Target.reachable rng chain in
  let end_transform = Dadu_kinematics.Fk.pose chain theta in
  let out = Datapath.serial_pass chain ~theta ~end_transform ~target in
  let open Dadu_linalg in
  let j = Dadu_kinematics.Jacobian.position_jacobian chain theta in
  let e = Vec3.sub target (Dadu_kinematics.Fk.position chain theta) in
  let dtheta = Mat.mul_transpose_vec j (Vec3.to_vec e) in
  Alcotest.(check bool) "prismatic columns handled" true
    (Vec.approx_equal ~tol:1e-12 out.Datapath.dtheta_base dtheta)

(* ---- Sim (execution-based simulator) ---- *)

let sim_problem seed dof =
  let rng = Rng.create seed in
  Ik.random_problem rng (Robots.eval_chain ~dof)

let test_sim_bit_identical_to_quick_ik () =
  (* The hardware dataflow performs the same float operations in the same
     order as the software solver, so results are bit-identical. *)
  List.iter
    (fun (seed, dof) ->
      let p = sim_problem seed dof in
      let sim = Sim.run ~speculations:64 p in
      let sw = Dadu_core.Quick_ik.solve ~speculations:64 p in
      Alcotest.(check int) "same iterations" sw.Ik.iterations sim.Sim.iterations;
      Alcotest.(check bool) "bit-identical theta" true (sw.Ik.theta = sim.Sim.theta);
      Alcotest.(check (float 0.)) "bit-identical error" sw.Ik.error sim.Sim.err;
      Alcotest.(check bool) "same verdict" true
        (sim.Sim.converged = (sw.Ik.status = Ik.Converged)))
    [ (81, 12); (82, 25); (83, 50) ]

let test_sim_cycles_match_ikacc () =
  let p = sim_problem 84 25 in
  let sim = Sim.run ~speculations:64 p in
  let priced = Ikacc.solve ~speculations:64 p in
  Alcotest.(check int) "same total cycles" priced.Ikacc.total_cycles sim.Sim.total_cycles;
  Alcotest.(check int) "same SSU busy cycles"
    (sim.Sim.iterations * Scheduler.ssu_busy_cycles cfg ~dof:25 ~speculations:64)
    sim.Sim.ssu_busy_cycles

let test_sim_steps_log () =
  let p = sim_problem 85 12 in
  let sim = Sim.run ~speculations:32 p in
  Alcotest.(check int) "one step per iteration" sim.Sim.iterations
    (List.length sim.Sim.steps);
  List.iteri
    (fun i (s : Sim.step) ->
      Alcotest.(check int) "ordered" i s.Sim.iteration;
      Alcotest.(check bool) "winner in range" true (s.Sim.winner >= 0 && s.Sim.winner < 32);
      Alcotest.(check bool) "winner error consistent" true
        (s.Sim.winner_err >= 0.))
    sim.Sim.steps

let test_sim_odd_speculations () =
  (* speculation count not a multiple of the SSU count exercises the
     partial last round *)
  let p = sim_problem 86 12 in
  let sim = Sim.run ~speculations:50 p in
  Alcotest.(check bool) "converged" true sim.Sim.converged

(* ---- Sim fault injection & re-verification ---- *)

module Fault = Dadu_util.Fault

let always site arg = { Fault.site; trigger = Fault.Always; arg }

let test_sim_default_path_unfaulted () =
  (* explicit defaults must be the byte-identical no-op *)
  let p = sim_problem 87 12 in
  let a = Sim.run ~speculations:32 p in
  let b = Sim.run ~speculations:32 ~fault:Fault.disabled ~reverify:false p in
  Alcotest.(check bool) "reports byte-identical" true (a = b);
  Alcotest.(check int) "no faults" 0 a.Sim.faults_injected;
  Alcotest.(check int) "no recoveries" 0 a.Sim.recoveries;
  Alcotest.(check int) "no recovery cycles" 0 a.Sim.recovery_cycles

let test_sim_reverify_clean_is_functionally_invisible () =
  (* no faults: every recheck confirms, so only the recheck cycles differ *)
  let p = sim_problem 87 12 in
  let base = Sim.run ~speculations:32 p in
  let rv = Sim.run ~speculations:32 ~reverify:true p in
  Alcotest.(check bool) "same theta" true (base.Sim.theta = rv.Sim.theta);
  Alcotest.(check int) "same iterations" base.Sim.iterations rv.Sim.iterations;
  Alcotest.(check int) "no recoveries" 0 rv.Sim.recoveries;
  Alcotest.(check int) "total = base + recovery"
    (base.Sim.total_cycles + rv.Sim.recovery_cycles)
    rv.Sim.total_cycles

let test_sim_flips_absorbed_with_reverify () =
  (* ISSUE acceptance: at 30 DOF with at least one bit-flip per
     iteration, the re-verifying selector still converges to paper
     accuracy — because the flip corrupts step selection only; the
     honest SPU error drives termination and recovery restores an
     honest winner *)
  let p = sim_problem 88 30 in
  let fault = Fault.arm ~seed:9 [ always "ssu-flip" 52. ] in
  let r = Sim.run ~speculations:64 ~fault ~reverify:true p in
  Alcotest.(check bool) "at least one flip per iteration" true
    (r.Sim.faults_injected >= r.Sim.iterations && r.Sim.iterations > 0);
  Alcotest.(check bool) "mismatches detected" true (r.Sim.recoveries > 0);
  Alcotest.(check bool) "converges to paper accuracy" true
    (r.Sim.converged && r.Sim.err < Ik.default_config.Ik.accuracy)

let test_sim_stuck_ssu_recovers_software_behavior () =
  (* an SSU stuck at zero claims every selection; the honest sweep at
     the end of recovery restores exactly the software solver's choices,
     so the trajectory is bit-identical to Quick-IK *)
  let p = sim_problem 90 12 in
  let fault = Fault.arm ~seed:3 [ always "ssu-stuck" 0. ] in
  let rv = Sim.run ~speculations:32 ~fault ~reverify:true p in
  let sw = Dadu_core.Quick_ik.solve ~speculations:32 p in
  Alcotest.(check bool) "converged" true rv.Sim.converged;
  Alcotest.(check int) "software iteration count restored" sw.Ik.iterations
    rv.Sim.iterations;
  Alcotest.(check bool) "bit-identical theta" true (sw.Ik.theta = rv.Sim.theta)

let test_sim_dropped_schedules_recovered () =
  let p = sim_problem 89 12 in
  let fresh () = Fault.arm ~seed:1 [ always "sched-drop" 0. ] in
  let blind = Sim.run ~speculations:32 ~fault:(fresh ()) p in
  let rv = Sim.run ~speculations:32 ~fault:(fresh ()) ~reverify:true p in
  Alcotest.(check bool) "reverify converges" true rv.Sim.converged;
  Alcotest.(check bool) "one recovery per iteration" true
    (rv.Sim.recoveries >= rv.Sim.iterations);
  (* without recovery every round is lost: the selector sees only the
     reset pattern, defaulting every winner to candidate 0 *)
  List.iter
    (fun (s : Sim.step) ->
      Alcotest.(check int) "blind winner defaults to 0" 0 s.Sim.winner;
      Alcotest.(check bool) "blind winner error is the reset pattern" true
        (s.Sim.winner_err = infinity))
    blind.Sim.steps;
  (* the honest sweep restores exactly the software solver's choices *)
  let sw = Dadu_core.Quick_ik.solve ~speculations:32 p in
  Alcotest.(check int) "software iterations restored" sw.Ik.iterations
    rv.Sim.iterations;
  Alcotest.(check bool) "bit-identical theta" true (sw.Ik.theta = rv.Sim.theta)

let test_sim_recovery_cycles_accounted () =
  let p = sim_problem 91 12 in
  let fault = Fault.arm ~seed:5 [ always "ssu-stuck" 0. ] in
  let r = Sim.run ~speculations:32 ~fault ~reverify:true p in
  let stepsum =
    List.fold_left (fun acc (s : Sim.step) -> acc + s.Sim.cycles) 0 r.Sim.steps
  in
  Alcotest.(check int) "per-step cycles sum to the total" r.Sim.total_cycles
    stepsum;
  Alcotest.(check bool) "recovery strictly accounted" true
    (r.Sim.recovery_cycles > 0 && r.Sim.recovery_cycles < r.Sim.total_cycles)

(* ---- Design space ---- *)

let test_dse_area_calibration () =
  Alcotest.(check (float 1e-9)) "paper point area" 2.27
    (Design_space.area ~num_ssus:32)

let test_dse_evaluate_consistency () =
  let e =
    Design_space.evaluate
      { Design_space.num_ssus = 32; frequency_hz = 1e9 }
      ~dof:50 ~speculations:64 ~iterations:100
  in
  Alcotest.(check (float 1e-15)) "edp = energy x time" (e.Design_space.energy_j *. e.Design_space.time_s)
    e.Design_space.edp;
  Alcotest.(check bool) "positive" true
    (e.Design_space.time_s > 0. && e.Design_space.energy_j > 0.)

let test_dse_frequency_scaling () =
  let eval f =
    Design_space.evaluate
      { Design_space.num_ssus = 32; frequency_hz = f }
      ~dof:50 ~speculations:64 ~iterations:100
  in
  let slow = eval 0.5e9 and fast = eval 1e9 in
  Alcotest.(check (float 1e-12)) "half frequency, double time"
    (2. *. fast.Design_space.time_s) slow.Design_space.time_s;
  (* with V tracking f, the slow design spends less energy per solve *)
  Alcotest.(check bool) "slow design saves energy" true
    (slow.Design_space.energy_j < fast.Design_space.energy_j)

let test_dse_pareto_non_dominated =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pareto front is non-dominated and non-empty" ~count:50
       QCheck.(int_range 1 1000)
       (fun iterations ->
         let evals =
           Design_space.sweep ~dof:30 ~speculations:64 ~iterations ()
         in
         let front = Design_space.pareto evals in
         front <> []
         && List.for_all
              (fun e ->
                not
                  (List.exists
                     (fun o ->
                       o != e
                       && o.Design_space.time_s <= e.Design_space.time_s
                       && o.Design_space.energy_j <= e.Design_space.energy_j
                       && o.Design_space.area_mm2 <= e.Design_space.area_mm2
                       && (o.Design_space.time_s < e.Design_space.time_s
                          || o.Design_space.energy_j < e.Design_space.energy_j
                          || o.Design_space.area_mm2 < e.Design_space.area_mm2))
                     evals))
              front))

let test_dse_paper_point_on_front () =
  let evals = Design_space.sweep ~dof:100 ~speculations:64 ~iterations:50 () in
  let front = Design_space.pareto evals in
  Alcotest.(check bool) "32 SSU / 1 GHz is Pareto-optimal" true
    (List.exists
       (fun e ->
         e.Design_space.design.Design_space.num_ssus = 32
         && e.Design_space.design.Design_space.frequency_hz = 1e9)
       front)

(* ---- Ikacc ---- *)

let problem seed dof =
  let rng = Rng.create seed in
  Ik.random_problem rng (Robots.eval_chain ~dof)

let test_ikacc_functionally_equals_quick_ik () =
  let p = problem 71 12 in
  let report = Ikacc.solve ~speculations:64 p in
  let software = Dadu_core.Quick_ik.solve ~speculations:64 p in
  Alcotest.(check int) "same iterations" software.Ik.iterations
    report.Ikacc.result.Ik.iterations;
  Alcotest.(check bool) "same joint angles" true
    (software.Ik.theta = report.Ikacc.result.Ik.theta)

let test_ikacc_report_consistency () =
  let p = problem 72 25 in
  let r = Ikacc.solve ~speculations:64 p in
  Alcotest.(check int) "total = iters x cpi"
    (r.Ikacc.result.Ik.iterations * r.Ikacc.cycles_per_iteration)
    r.Ikacc.total_cycles;
  Alcotest.(check (float 1e-12)) "time = cycles / freq"
    (float_of_int r.Ikacc.total_cycles /. cfg.Config.frequency_hz)
    r.Ikacc.time_s;
  Alcotest.(check int) "2 schedules for 64/32" 2 r.Ikacc.schedules_per_iteration;
  Alcotest.(check bool) "utilization in (0, 1]" true
    (r.Ikacc.ssu_utilization > 0. && r.Ikacc.ssu_utilization <= 1.)

let test_ikacc_power_calibration () =
  (* DESIGN.md section 6: the default config is calibrated to the paper's
     158.6 mW at 100 DOF / 64 speculations. *)
  let p = problem 73 100 in
  let r = Ikacc.solve ~speculations:64 p in
  let mw = r.Ikacc.energy.Energy.avg_power_w *. 1e3 in
  Alcotest.(check bool)
    (Printf.sprintf "avg power %.1f mW within 145-170" mw)
    true
    (mw > 145. && mw < 170.)

let test_ikacc_realtime_100dof () =
  (* the paper's headline: a 100-DOF solve is real-time (12 ms there; ours
     is faster because our iteration counts are lower) *)
  let p = problem 74 100 in
  let r = Ikacc.solve ~speculations:64 p in
  Alcotest.(check bool) "converged" true (r.Ikacc.result.Ik.status = Ik.Converged);
  Alcotest.(check bool) "within 12 ms" true (r.Ikacc.time_s < 12e-3)

let test_ikacc_time_for_iterations () =
  let t = Ikacc.time_for_iterations ~dof:50 ~speculations:64 ~iterations:100 () in
  let expected =
    float_of_int (100 * Scheduler.iteration_cycles cfg ~dof:50 ~speculations:64) /. 1e9
  in
  Alcotest.(check (float 1e-15)) "matches scheduler" expected t

let test_ikacc_custom_config () =
  let p = sim_problem 87 25 in
  let config = Config.with_ssus 16 cfg in
  let r = Ikacc.solve ~config ~speculations:64 p in
  Alcotest.(check int) "4 schedules on 16 SSUs" 4 r.Ikacc.schedules_per_iteration;
  (* same functional result as the default hardware size *)
  let r32 = Ikacc.solve ~speculations:64 p in
  Alcotest.(check bool) "hardware size does not change the math" true
    (r.Ikacc.result.Ik.theta = r32.Ikacc.result.Ik.theta);
  Alcotest.(check bool) "but it changes the time" true
    (r.Ikacc.time_s > r32.Ikacc.time_s)

let test_ikacc_utilization_drops_with_extra_ssus () =
  let p = problem 75 12 in
  let r32 = Ikacc.solve ~speculations:64 p in
  let r128 = Ikacc.solve ~config:(Config.with_ssus 128 cfg) ~speculations:64 p in
  Alcotest.(check bool) "idle SSUs reduce utilization" true
    (r128.Ikacc.ssu_utilization < r32.Ikacc.ssu_utilization)

let () =
  Alcotest.run "dadu_accel"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "with_ssus" `Quick test_config_with_ssus;
          Alcotest.test_case "invalid" `Quick test_config_invalid;
        ] );
      ( "units",
        [
          Alcotest.test_case "fku linear" `Quick test_fku_linear;
          Alcotest.test_case "fku formula" `Quick test_fku_formula;
          Alcotest.test_case "fku invalid" `Quick test_fku_invalid;
          Alcotest.test_case "spu II" `Quick test_spu_ii;
          Alcotest.test_case "spu formula" `Quick test_spu_formula;
          Alcotest.test_case "spu stages" `Quick test_spu_stages;
          Alcotest.test_case "ssu formula" `Quick test_ssu_formula;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "plan exact" `Quick test_plan_exact;
          Alcotest.test_case "plan remainder" `Quick test_plan_remainder;
          Alcotest.test_case "plan small" `Quick test_plan_small;
          qcheck test_assignments_cover;
          Alcotest.test_case "iteration decomposition" `Quick
            test_iteration_cycles_decomposition;
          Alcotest.test_case "busy = speculations" `Quick test_ssu_busy_equals_speculations;
          qcheck test_more_ssus_never_slower;
        ] );
      ( "selector",
        [
          Alcotest.test_case "best" `Quick test_selector_best;
          Alcotest.test_case "ties" `Quick test_selector_ties;
          Alcotest.test_case "empty" `Quick test_selector_empty;
          qcheck test_selector_fold_rounds;
        ] );
      ( "energy",
        [
          Alcotest.test_case "zero" `Quick test_energy_zero;
          Alcotest.test_case "additive" `Quick test_energy_additive;
          Alcotest.test_case "leakage floor" `Quick test_energy_leakage_floor;
          Alcotest.test_case "negative rejected" `Quick test_energy_negative_rejected;
        ] );
      ( "fixed-point",
        [
          Alcotest.test_case "quantize grid" `Quick test_fixed_quantize_grid;
          Alcotest.test_case "saturation" `Quick test_fixed_saturates;
          Alcotest.test_case "word width" `Quick test_fixed_word_width;
          test_fixed_idempotent;
          Alcotest.test_case "error vs bits" `Slow test_fixed_fk_error_shrinks_with_bits;
          Alcotest.test_case "Q8.24 sufficient" `Slow
            test_fixed_q24_sufficient_for_paper_accuracy;
          Alcotest.test_case "float limit" `Quick test_fixed_error_zero_in_float_limit;
        ] );
      ( "trace",
        [
          test_trace_makespan_matches_analytic;
          test_trace_ssu_busy_matches_analytic;
          Alcotest.test_case "candidates covered" `Quick test_trace_candidates_covered;
          Alcotest.test_case "spu first, well-formed" `Quick test_trace_spu_first;
          Alcotest.test_case "render" `Quick test_trace_render;
        ] );
      ( "datapath-sim",
        [
          test_datapath_matches_software;
          Alcotest.test_case "prismatic datapath" `Quick test_datapath_prismatic;
          Alcotest.test_case "sim = quick-ik bitwise" `Slow
            test_sim_bit_identical_to_quick_ik;
          Alcotest.test_case "sim cycles = priced cycles" `Quick test_sim_cycles_match_ikacc;
          Alcotest.test_case "step log" `Quick test_sim_steps_log;
          Alcotest.test_case "odd speculation count" `Quick test_sim_odd_speculations;
        ] );
      ( "sim-faults",
        [
          Alcotest.test_case "default path unfaulted" `Quick
            test_sim_default_path_unfaulted;
          Alcotest.test_case "clean reverify invisible" `Quick
            test_sim_reverify_clean_is_functionally_invisible;
          Alcotest.test_case "flips absorbed at 30 DOF" `Quick
            test_sim_flips_absorbed_with_reverify;
          Alcotest.test_case "stuck SSU recovers software behavior" `Quick
            test_sim_stuck_ssu_recovers_software_behavior;
          Alcotest.test_case "dropped schedules recovered" `Quick
            test_sim_dropped_schedules_recovered;
          Alcotest.test_case "recovery cycles accounted" `Quick
            test_sim_recovery_cycles_accounted;
        ] );
      ( "design-space",
        [
          Alcotest.test_case "area calibration" `Quick test_dse_area_calibration;
          Alcotest.test_case "evaluate consistency" `Quick test_dse_evaluate_consistency;
          Alcotest.test_case "frequency scaling" `Quick test_dse_frequency_scaling;
          test_dse_pareto_non_dominated;
          Alcotest.test_case "paper point on front" `Quick test_dse_paper_point_on_front;
        ] );
      ( "ikacc",
        [
          Alcotest.test_case "equals software Quick-IK" `Quick
            test_ikacc_functionally_equals_quick_ik;
          Alcotest.test_case "report consistency" `Quick test_ikacc_report_consistency;
          Alcotest.test_case "power calibration" `Slow test_ikacc_power_calibration;
          Alcotest.test_case "real-time 100 DOF" `Slow test_ikacc_realtime_100dof;
          Alcotest.test_case "time_for_iterations" `Quick test_ikacc_time_for_iterations;
          Alcotest.test_case "utilization vs SSUs" `Quick
            test_ikacc_utilization_drops_with_extra_ssus;
          Alcotest.test_case "custom hardware size" `Quick test_ikacc_custom_config;
        ] );
    ]
