(* Unit and property tests for Dadu_util: Rng, Stats, Table, Csv, Counter,
   Domain_pool. *)

module Rng = Dadu_util.Rng
module Stats = Dadu_util.Stats
module Table = Dadu_util.Table
module Csv = Dadu_util.Csv
module Counter = Dadu_util.Counter
module Pool = Dadu_util.Domain_pool
module Trace = Dadu_util.Trace

let check_float = Alcotest.(check (float 1e-9))
let check_loose = Alcotest.(check (float 1e-2))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0, 17)" true (x >= 0 && x < 17)
  done

let test_rng_int_covers () =
  let rng = Rng.create 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0. && x < 2.5)
  done

let test_rng_uniform_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 10_000 do
    let x = Rng.uniform rng (-3.) 9. in
    Alcotest.(check bool) "in [-3, 9)" true (x >= -3. && x < 9.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng) in
  check_loose "mean ~ 0" 0. (Stats.mean samples);
  Alcotest.(check bool) "stddev ~ 1" true (Float.abs (Stats.stddev samples -. 1.) < 0.02)

let test_rng_shuffle_multiset () =
  let rng = Rng.create 9 in
  let a = Array.init 100 Fun.id in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let b' = Array.copy b in
  Array.sort compare b';
  Alcotest.(check (array int)) "same elements" a b';
  Alcotest.(check bool) "actually permuted" true (b <> a)

let test_rng_split_independent () =
  let parent = Rng.create 10 in
  let child = Rng.split parent in
  let xs = Array.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = Array.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Rng.bits64 a) (Rng.bits64 b)

(* ---- Stats ---- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_stddev () =
  check_float "sample stddev" (sqrt (14. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 6. |])

let test_stats_stddev_singleton () = check_float "singleton" 0. (Stats.stddev [| 5. |])

let test_stats_minmax () =
  check_float "min" (-2.) (Stats.min [| 3.; -2.; 7. |]);
  check_float "max" 7. (Stats.max [| 3.; -2.; 7. |])

let test_stats_median_odd () = check_float "odd median" 3. (Stats.median [| 5.; 3.; 1. |])

let test_stats_median_even () =
  check_float "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_stats_percentile_interp () =
  check_float "p25 interpolates" 1.75 (Stats.percentile 25. [| 1.; 2.; 3.; 4. |])

let test_stats_percentile_ends () =
  let xs = [| 9.; 1.; 5. |] in
  check_float "p0 = min" 1. (Stats.percentile 0. xs);
  check_float "p100 = max" 9. (Stats.percentile 100. xs)

let test_stats_percentile_range () =
  Alcotest.check_raises "p > 100 rejected"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile 101. [| 1. |]))

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_geomean () = check_float "geomean" 2. (Stats.geomean [| 1.; 2.; 4. |])

let test_stats_geomean_nonpositive () =
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [| 1.; 0. |]))

let test_stats_summary_order =
  QCheck.Test.make ~name:"summary statistics are ordered" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.p50 && s.Stats.p50 <= s.Stats.p95
      && s.Stats.p95 <= s.Stats.max
      && s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9)

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "contains header" true
    (Astring.String.is_infix ~affix:"name" rendered);
  Alcotest.(check bool) "right-aligned value" true
    (Astring.String.is_infix ~affix:"|     1 |" rendered)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_fmt () =
  Alcotest.(check string) "fixed" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "sig" "3.142" (Table.fmt_sig ~digits:4 3.14159)

(* ---- Csv ---- *)

let test_csv_escape_plain () = Alcotest.(check string) "plain" "abc" (Csv.escape "abc")

let test_csv_escape_comma () =
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b")

let test_csv_escape_quote () =
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_row () =
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write () =
  let path = Filename.temp_file "dadu" ".csv" in
  Csv.write path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "x,y"; "1,2"; "3,4" ] lines

let test_table_separator () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_sep t;
  Table.add_row t [ "y" ];
  let rendered = Table.render t in
  (* header line + top/bottom + separator = 4 horizontal rules *)
  let rules =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && l.[0] = '+')
         (String.split_on_char '\n' rendered))
  in
  Alcotest.(check int) "four rules" 4 rules

(* ---- Chart ---- *)

let test_chart_empty () =
  Alcotest.(check string) "empty" "" (Dadu_util.Chart.render [])

let test_chart_scaling () =
  let groups =
    [ { Dadu_util.Chart.label = "g"; bars = [ ("a", 100.); ("b", 50.); ("c", 0.) ] } ]
  in
  let rendered = Dadu_util.Chart.render ~width:10 groups in
  Alcotest.(check bool) "max bar full width" true
    (Astring.String.is_infix ~affix:"##########" rendered);
  Alcotest.(check bool) "half bar" true (Astring.String.is_infix ~affix:"##### 50" rendered);
  Alcotest.(check bool) "zero bar keeps value" true
    (Astring.String.is_infix ~affix:"| 0" rendered)

let test_chart_log_note () =
  let groups = [ { Dadu_util.Chart.label = "g"; bars = [ ("a", 10.) ] } ] in
  Alcotest.(check bool) "log footnote" true
    (Astring.String.is_infix ~affix:"log10"
       (Dadu_util.Chart.render ~log:true groups));
  Alcotest.(check bool) "no footnote when linear" false
    (Astring.String.is_infix ~affix:"log10" (Dadu_util.Chart.render groups))

let test_chart_log_compresses () =
  (* on a log scale, a 100x value difference gives much less than a 100x
     bar difference *)
  let groups =
    [ { Dadu_util.Chart.label = "g"; bars = [ ("big", 9999.); ("small", 99.) ] } ]
  in
  let rendered = Dadu_util.Chart.render ~width:40 ~log:true groups in
  let count_hashes line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  let lines = String.split_on_char '\n' rendered in
  let big = List.find (fun l -> Astring.String.is_infix ~affix:"big" l) lines in
  let small = List.find (fun l -> Astring.String.is_infix ~affix:"small" l) lines in
  Alcotest.(check int) "big is full" 40 (count_hashes big);
  Alcotest.(check int) "small is half (log ratio)" 20 (count_hashes small)

let test_chart_negative_clamped () =
  let groups = [ { Dadu_util.Chart.label = "g"; bars = [ ("neg", -5.); ("pos", 5.) ] } ] in
  let rendered = Dadu_util.Chart.render ~width:10 groups in
  Alcotest.(check bool) "negative shows empty bar" true
    (Astring.String.is_infix ~affix:"| -5" rendered)

(* ---- Counter ---- *)

let test_counter_basic () =
  let c = Counter.create () in
  Counter.add c "macs" 5;
  Counter.incr c "macs";
  Counter.incr c "loads";
  Alcotest.(check int) "macs" 6 (Counter.get c "macs");
  Alcotest.(check int) "loads" 1 (Counter.get c "loads");
  Alcotest.(check int) "unknown" 0 (Counter.get c "nothing")

let test_counter_reset () =
  let c = Counter.create () in
  Counter.add c "x" 3;
  Counter.reset c;
  Alcotest.(check int) "reset to zero" 0 (Counter.get c "x")

let test_counter_to_list () =
  let c = Counter.create () in
  Counter.add c "b" 2;
  Counter.add c "a" 1;
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 1); ("b", 2) ]
    (Counter.to_list c)

(* ---- Domain_pool ---- *)

let test_pool_covers_all_indices () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for pool n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1 (Atomic.get h))
    hits

let test_pool_map () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let result = Pool.map pool (fun i -> i * i) 50 in
  Alcotest.(check (array int)) "squares" (Array.init 50 (fun i -> i * i)) result

let test_pool_empty () =
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "must not run");
  Alcotest.(check (array int)) "empty map" [||] (Pool.map pool Fun.id 0)

let test_pool_exception () =
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let raised =
    try
      Pool.parallel_for pool 10 (fun i -> if i = 3 then failwith "boom");
      false
    with Failure msg -> msg = "boom"
  in
  Alcotest.(check bool) "exception propagated" true raised;
  (* pool still usable afterwards *)
  Pool.parallel_for pool 4 ignore

let test_pool_reuse () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  for round = 1 to 20 do
    let acc = Atomic.make 0 in
    Pool.parallel_for pool 100 (fun _ -> Atomic.incr acc);
    Alcotest.(check int) (Printf.sprintf "round %d" round) 100 (Atomic.get acc)
  done

let test_pool_single_worker () =
  let pool = Pool.create 1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let result = Pool.map pool (fun i -> i + 1) 10 in
  Alcotest.(check (array int)) "caller-only pool" (Array.init 10 (fun i -> i + 1)) result

let test_pool_size () =
  let pool = Pool.create 5 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "size" 5 (Pool.size pool)

let test_pool_invalid () =
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Domain_pool.create: size must be positive") (fun () ->
      ignore (Pool.create 0))

(* The serving layer leans on long-lived pools: one pool, hundreds of
   parallel_for waves. Exercise that pattern far past the existing 20-round
   reuse test. *)
let test_pool_stress_reuse () =
  let pool = Pool.create (Pool.recommended_size ()) in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let rounds = 120 in
  for round = 1 to rounds do
    (* vary the trip count so waves of every shape (empty, smaller than the
       pool, much larger) hit the same pool *)
    let n = (round * 7) mod 97 in
    let acc = Atomic.make 0 in
    Pool.parallel_for pool n (fun i -> Atomic.fetch_and_add acc i |> ignore);
    Alcotest.(check int)
      (Printf.sprintf "round %d sum" round)
      (n * (n - 1) / 2)
      (Atomic.get acc)
  done

(* Force the failure into a worker domain (not the caller): the body raises
   only when it is NOT running on the domain that called parallel_for. *)
let test_pool_worker_exception_propagates () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let caller = Domain.self () in
  let raised_elsewhere = ref false in
  (* retry: work stealing means a tiny wave might be absorbed by the caller *)
  let attempts = ref 0 in
  while (not !raised_elsewhere) && !attempts < 50 do
    incr attempts;
    try
      Pool.parallel_for pool 64 (fun _ ->
          if Domain.self () <> caller then failwith "worker boom"
          else Unix.sleepf 1e-4)
    with Failure msg ->
      Alcotest.(check string) "worker exception re-raised in caller" "worker boom" msg;
      raised_elsewhere := true
  done;
  Alcotest.(check bool) "a worker raised within 50 waves" true !raised_elsewhere;
  (* and the pool still works afterwards *)
  let acc = Atomic.make 0 in
  Pool.parallel_for pool 32 (fun _ -> Atomic.incr acc);
  Alcotest.(check int) "pool survives worker failure" 32 (Atomic.get acc)

let test_pool_map_deterministic_at_recommended_size () =
  let pool = Pool.create (Pool.recommended_size ()) in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let f i = float_of_int (i * i) /. 7. in
  let expect = Array.init 257 f in
  for round = 1 to 100 do
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "round %d identical to serial" round)
      expect
      (Pool.map pool f 257)
  done

(* Grained dispatch must still cover every index exactly once, whatever
   the relation of grain to n: exact divisor, ragged tail, grain > n. *)
let test_pool_grain_covers_all_indices () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  List.iter
    (fun (n, grain) ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for ~grain pool n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h ->
          Alcotest.(check int)
            (Printf.sprintf "n=%d grain=%d index %d hit once" n grain i)
            1 (Atomic.get h))
        hits)
    [ (64, 8); (100, 7); (5, 64); (1, 1); (97, 97) ]

let test_pool_grain_invalid () =
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.check_raises "grain 0"
    (Invalid_argument "Domain_pool.parallel_for: grain must be positive")
    (fun () -> Pool.parallel_for ~grain:0 pool 4 ignore);
  Alcotest.check_raises "negative chunk count"
    (Invalid_argument "Domain_pool.parallel_for_chunks: negative count")
    (fun () -> Pool.parallel_for_chunks pool ~grain:2 (-1) (fun _ _ -> ()))

(* The chunk-level API hands out contiguous [lo, hi) ranges that partition
   [0, n) with hi - lo <= grain; collect them and check the partition. *)
let test_pool_chunk_shapes () =
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  List.iter
    (fun (n, grain) ->
      let mutex = Mutex.create () in
      let chunks = ref [] in
      Pool.parallel_for_chunks pool ~grain n (fun lo hi ->
          Mutex.lock mutex;
          chunks := (lo, hi) :: !chunks;
          Mutex.unlock mutex);
      let sorted = List.sort compare !chunks in
      let expected_count = (n + grain - 1) / grain in
      Alcotest.(check int)
        (Printf.sprintf "n=%d grain=%d chunk count" n grain)
        expected_count (List.length sorted);
      let covered = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk [%d,%d) well-formed" lo hi)
            true
            (lo = !covered && hi > lo && hi - lo <= grain && hi <= n);
          covered := hi)
        sorted;
      Alcotest.(check int) "partition reaches n" n !covered)
    [ (64, 16); (65, 16); (7, 3); (3, 8) ]

let test_pool_grain_exception_propagates () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check bool) "exception reaches caller" true
    (try
       Pool.parallel_for ~grain:8 pool 64 (fun i ->
           if i = 37 then failwith "boom");
       false
     with Failure _ -> true);
  (* pool still usable afterwards, grained or not *)
  let acc = Atomic.make 0 in
  Pool.parallel_for ~grain:4 pool 32 (fun _ -> Atomic.incr acc);
  Alcotest.(check int) "pool survives" 32 (Atomic.get acc)

(* Adversarial partitions.  The contiguous checks above only ever used
   tame grains; degenerate ones have their own failure modes: an empty
   range must deliver no chunk at all, grain 1 nothing but
   single-element chunks, and a grain near [max_int] one full-range
   chunk.  The task-count ceiling division used to compute
   [n + grain - 1], which wraps negative for huge grains and turned the
   whole dispatch into a silent no-op — zero chunks, zero coverage, no
   error. *)
let pool_chunk_partition ~pool n grain =
  let mutex = Mutex.create () in
  let chunks = ref [] in
  Pool.parallel_for_chunks pool ~grain n (fun lo hi ->
      Mutex.lock mutex;
      chunks := (lo, hi) :: !chunks;
      Mutex.unlock mutex);
  List.sort compare !chunks

(* no empty chunks, each within bounds and at most [grain] wide, and
   together they tile [0, n) in order without gaps or overlaps *)
let chunks_partition_exactly n grain sorted =
  let ok = ref true in
  let covered = ref 0 in
  List.iter
    (fun (lo, hi) ->
      if not (lo = !covered && hi > lo && hi - lo <= grain && hi <= n) then
        ok := false;
      covered := hi)
    sorted;
  !ok && !covered = n

let test_pool_chunk_adversarial () =
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  List.iter
    (fun grain ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "grain %d delivers one full chunk" grain)
        [ (0, 7) ]
        (pool_chunk_partition ~pool 7 grain))
    [ max_int; max_int - 1; (max_int / 2) + 1; 8 ];
  Alcotest.(check (list (pair int int)))
    "grain 1 delivers singletons"
    (List.init 9 (fun i -> (i, i + 1)))
    (pool_chunk_partition ~pool 9 1);
  List.iter
    (fun grain ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "n=0 grain=%d delivers nothing" grain)
        []
        (pool_chunk_partition ~pool 0 grain))
    [ 1; max_int ]

let test_pool_chunk_partition_property =
  QCheck.Test.make ~name:"chunks partition [0,n) for adversarial grains"
    ~count:50
    (QCheck.make
       ~print:(fun (n, grain) -> Printf.sprintf "n=%d grain=%d" n grain)
       QCheck.Gen.(
         pair (int_range 0 200)
           (oneof
              [
                int_range 1 3;
                int_range 1 250;
                return ((max_int / 2) + 1);
                return (max_int - 1);
                return max_int;
              ])))
    (fun (n, grain) ->
      let pool = Pool.create 2 in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      chunks_partition_exactly n grain (pool_chunk_partition ~pool n grain))

(* ---- Histogram ---- *)

module Histogram = Dadu_util.Histogram

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check bool) "no summary" true (Histogram.summarize h = None);
  Alcotest.check_raises "percentile on empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Histogram.percentile h 50.))

let test_histogram_percentiles () =
  let h = Histogram.create ~initial_capacity:2 () in
  (* insertion order deliberately scrambled; growth forced past capacity 2 *)
  List.iter (Histogram.add h) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "p0" 1. (Histogram.percentile h 0.);
  Alcotest.(check (float 1e-12)) "p50" 3. (Histogram.percentile h 50.);
  Alcotest.(check (float 1e-12)) "p100" 5. (Histogram.percentile h 100.);
  match Histogram.summarize h with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    Alcotest.(check int) "n" 5 s.Histogram.n;
    Alcotest.(check (float 1e-12)) "mean" 3. s.Histogram.mean;
    Alcotest.(check (float 1e-12)) "min" 1. s.Histogram.min;
    Alcotest.(check (float 1e-12)) "max" 5. s.Histogram.max;
    Alcotest.(check bool) "ordered" true
      (s.Histogram.p50 <= s.Histogram.p95 && s.Histogram.p95 <= s.Histogram.p99)

let test_histogram_rejects_nonfinite () =
  let h = Histogram.create () in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Histogram.add: non-finite sample") (fun () ->
      Histogram.add h Float.nan);
  Alcotest.check_raises "inf rejected"
    (Invalid_argument "Histogram.add: non-finite sample") (fun () ->
      Histogram.add h Float.infinity);
  Alcotest.(check int) "nothing recorded" 0 (Histogram.count h)

let test_histogram_clear () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.; 2.; 3. ];
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h);
  Histogram.add h 9.;
  Alcotest.(check (array (float 0.))) "usable after clear" [| 9. |]
    (Histogram.to_array h)

let test_histogram_matches_stats =
  QCheck.Test.make ~name:"histogram percentiles match Stats on the same samples"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range (-1e3) 1e3))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let arr = Array.of_list samples in
      List.for_all
        (fun p ->
          Float.abs
            (Histogram.percentile h p -. Dadu_util.Stats.percentile p arr)
          < 1e-9)
        [ 0.; 25.; 50.; 95.; 99.; 100. ])

let qcheck = QCheck_alcotest.to_alcotest

(* ---- Json (benchmark harness serialization) ---- *)

module Json = Dadu_util.Json

let test_json_roundtrip_sample () =
  let v =
    Json.Obj
      [ ("schema", Json.Num 1.);
        ("benchmarks",
          Json.List
            [ Json.Obj
                [ ("name", Json.Str "quickik-seq-dof12");
                  ("dof", Json.Num 12.);
                  ("ns_per_iter", Json.Num 48321.75);
                  ("words_per_iter", Json.Num 0.) ] ]);
        ("ok", Json.Bool true);
        ("note", Json.Null) ]
  in
  match Json.of_string (Json.to_string v) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')

let test_json_number_forms () =
  Alcotest.(check string) "integer form" "12" (Json.to_string (Json.Num 12.));
  Alcotest.(check string) "negative zero stays a number" "-0"
    (Json.to_string (Json.Num (-0.)));
  (* %.17g round-trips every finite double *)
  let x = 0.1 +. 0.2 in
  (match Json.of_string (Json.to_string (Json.Num x)) with
  | Ok (Json.Num y) ->
    Alcotest.(check bool) "bit exact" true
      (Int64.bits_of_float x = Int64.bits_of_float y)
  | _ -> Alcotest.fail "number did not reparse");
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Json.to_string: nan/infinity are not representable")
    (fun () -> ignore (Json.to_string (Json.Num Float.nan)))

let test_json_string_escapes () =
  let s = "line\n\ttab \"quote\" back\\slash" in
  match Json.of_string (Json.to_string (Json.Str s)) with
  | Ok (Json.Str s') -> Alcotest.(check string) "escape round trip" s s'
  | Ok _ | Error _ -> Alcotest.fail "string did not reparse"

let test_json_parse_whitespace_and_unicode () =
  (match Json.of_string " { \"a\" : [ 1 , 2.5 , true , null ] } " with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Num 1.; Json.Num 2.5; Json.Bool true; Json.Null ]) ]) -> ()
  | Ok v -> Alcotest.failf "unexpected parse: %s" (Json.to_string v)
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  match Json.of_string {|"Aé"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "unicode string did not reparse"

let test_json_errors () =
  let is_error s =
    match Json.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (is_error "{} x");
  Alcotest.(check bool) "unterminated string" true (is_error "\"abc");
  Alcotest.(check bool) "bare word" true (is_error "quux");
  Alcotest.(check bool) "missing colon" true (is_error "{\"a\" 1}");
  Alcotest.(check bool) "empty input" true (is_error "")

let test_json_accessors () =
  let v = Json.Obj [ ("x", Json.Num 3.5); ("s", Json.Str "hi") ] in
  Alcotest.(check (option (float 0.))) "member+to_float" (Some 3.5)
    (Option.bind (Json.member "x" v) Json.to_float);
  Alcotest.(check (option string)) "member+to_str" (Some "hi")
    (Option.bind (Json.member "s" v) Json.to_str);
  Alcotest.(check bool) "missing member" true (Json.member "nope" v = None);
  Alcotest.(check bool) "to_list on non-list" true (Json.to_list v = None)

let test_json_file_roundtrip () =
  let path = Filename.temp_file "dadu_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let v = Json.Obj [ ("k", Json.List [ Json.Num 1.; Json.Str "two" ]) ] in
      Json.write_file path v;
      match Json.read_file path with
      | Ok v' -> Alcotest.(check bool) "file round trip" true (v = v')
      | Error msg -> Alcotest.failf "read_file: %s" msg)

let json_value_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun x -> Json.Num x) (float_range (-1e6) 1e6);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12)) ]
  in
  let value =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then scalar
            else
              frequency
                [ (2, scalar);
                  (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                  (1,
                    map
                      (fun kvs -> Json.Obj kvs)
                      (list_size (int_range 0 4)
                         (pair (string_size ~gen:printable (int_range 1 6)) (self (n / 2))))) ])
          n)
  in
  QCheck.make value

let test_json_roundtrip_property =
  QCheck.Test.make ~name:"Json to_string |> of_string round-trips" ~count:200
    json_value_gen
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

(* ---- Trace (monotone clock + span recorder) ---- *)

let test_trace_now_monotone () =
  let prev = ref (Trace.now_s ()) in
  for _ = 1 to 10_000 do
    let t = Trace.now_s () in
    if t < !prev then Alcotest.failf "clock ran backwards: %.9f < %.9f" t !prev;
    prev := t
  done

let test_trace_record_and_sort () =
  let t = Trace.create () in
  let base = Trace.now_s () in
  (* recorded out of order on purpose: spans sorts by (request, start, phase) *)
  Trace.record t ~request:1 ~phase:"commit" ~start_s:(base +. 2.) ~dur_s:0.1 ();
  Trace.record t ~request:0 ~phase:"solve"
    ~attrs:[ ("solver", "quick-ik") ]
    ~start_s:(base +. 1.) ~dur_s:0.5 ();
  Trace.record t ~request:1 ~phase:"prepare" ~start_s:base ~dur_s:0.0 ();
  Trace.record t ~request:0 ~phase:"prepare" ~start_s:base ~dur_s:0.0 ();
  Alcotest.(check int) "length" 4 (Trace.length t);
  let spans = Trace.spans t in
  Alcotest.(check (list (pair int string)))
    "sorted by request then start"
    [ (0, "prepare"); (0, "solve"); (1, "prepare"); (1, "commit") ]
    (List.map (fun (s : Trace.span) -> (s.Trace.request, s.Trace.phase)) spans);
  let solve = List.nth spans 1 in
  Alcotest.(check (option string)) "attrs survive" (Some "quick-ik")
    (List.assoc_opt "solver" solve.Trace.attrs);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "start offsets non-negative" true (s.Trace.start_s >= 0.))
    spans

let test_trace_negative_clamped () =
  let t = Trace.create () in
  (* a start before the trace's epoch clamps to 0, a negative duration to 0 *)
  Trace.record t ~request:0 ~phase:"weird" ~start_s:(-5.) ~dur_s:(-1.) ();
  match Trace.spans t with
  | [ s ] ->
    Alcotest.(check (float 0.)) "start clamped" 0. s.Trace.start_s;
    Alcotest.(check (float 0.)) "duration clamped" 0. s.Trace.dur_s
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_trace_jsonl () =
  let t = Trace.create () in
  let base = Trace.now_s () in
  Trace.record t ~request:0 ~phase:"solve"
    ~attrs:[ ("solver", "dls"); ("cache_hit", "true") ]
    ~start_s:base ~dur_s:1.25e-3 ();
  Trace.record t ~request:1 ~phase:"prepare" ~start_s:(base +. 1e-6) ~dur_s:0. ();
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl t) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "line %S is not JSON: %s" line msg
      | Ok json ->
        Alcotest.(check bool) "request present" true (Json.member "request" json <> None);
        Alcotest.(check bool) "dur_s present" true (Json.member "dur_s" json <> None))
    lines;
  (match Json.of_string (List.hd lines) with
  | Ok json ->
    Alcotest.(check (option string)) "attr exported" (Some "dls")
      (Option.bind (Json.member "solver" json) Json.to_str);
    Alcotest.(check (option (float 1e-12))) "duration rounded to ns" (Some 1.25e-3)
      (Option.bind (Json.member "dur_s" json) Json.to_float)
  | Error msg -> Alcotest.fail msg);
  (* write_jsonl round-trips through a file *)
  let path = Filename.temp_file "dadu_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write_jsonl t path;
  let content = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string) "file matches to_jsonl" (Trace.to_jsonl t) content

let test_trace_concurrent_records () =
  let t = Trace.create () in
  let per_domain = 500 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let s = Trace.now_s () in
              Trace.record t ~request:d ~phase:(Printf.sprintf "p%d" i) ~start_s:s
                ~dur_s:0. ()
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no record lost" (4 * per_domain) (Trace.length t);
  let spans = Trace.spans t in
  Alcotest.(check int) "spans returns them all" (4 * per_domain) (List.length spans);
  (* per-request start times are non-decreasing: now_s is monotone across
     domains and spans sorts by start within a request *)
  let last = Array.make 4 0. in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.start_s < last.(s.Trace.request) then
        Alcotest.fail "span starts not sorted within a request";
      last.(s.Trace.request) <- s.Trace.start_s)
    spans

(* ---- Fault (seeded, site-scoped injection) ---- *)

module Fault = Dadu_util.Fault

let consult ?(n = 64) t site =
  List.init n (fun i -> Fault.fires t ~site ~iteration:i ())

let firing = Alcotest.(list (option (float 0.)))

let test_fault_disabled_noop () =
  Alcotest.(check bool) "disabled" false (Fault.enabled Fault.disabled);
  Alcotest.(check (option (float 0.))) "never fires" None
    (Fault.fires Fault.disabled ~site:"ssu-flip" ());
  Alcotest.(check int) "no consultations recorded" 0
    (Fault.consultations Fault.disabled ~site:"ssu-flip");
  Alcotest.(check bool) "fork of disabled is disabled" false
    (Fault.enabled (Fault.fork Fault.disabled 3));
  Alcotest.(check bool) "empty plan disarms" false (Fault.enabled (Fault.arm []))

let test_fault_arm_deterministic () =
  let plan = [ { Fault.site = "ssu-flip"; trigger = Fault.Prob 0.3; arg = 40. } ] in
  let a = Fault.arm ~seed:11 plan and b = Fault.arm ~seed:11 plan in
  Alcotest.check firing "equal seed, equal firing" (consult a "ssu-flip")
    (consult b "ssu-flip");
  let again = consult (Fault.arm ~seed:11 plan) "ssu-flip" in
  let other = consult (Fault.arm ~seed:12 plan) "ssu-flip" in
  Alcotest.(check bool) "different seed, different firing" true (again <> other);
  (* a Prob rule actually mixes hits and misses over 64 draws *)
  Alcotest.(check bool) "some fire" true (List.exists Option.is_some again);
  Alcotest.(check bool) "some don't" true (List.exists Option.is_none again)

let test_fault_fork_independence () =
  let plan = [ { Fault.site = "s"; trigger = Fault.Prob 0.5; arg = 1. } ] in
  let t = Fault.arm ~seed:7 plan in
  let f0 = consult (Fault.fork t 0) "s" and f1 = consult (Fault.fork t 1) "s" in
  Alcotest.(check bool) "forks draw from distinct streams" true (f0 <> f1);
  (* forking is a pure derivation: consuming one fork never perturbs
     another fork of the same registry *)
  Alcotest.check firing "re-fork replays" f0 (consult (Fault.fork t 0) "s")

let test_fault_trigger_semantics () =
  let plan =
    [
      { Fault.site = "a"; trigger = Fault.Always; arg = 1. };
      { Fault.site = "i"; trigger = Fault.At_iteration 3; arg = 2. };
      { Fault.site = "f"; trigger = Fault.From_iteration 5; arg = 3. };
      { Fault.site = "e"; trigger = Fault.Every 4; arg = 4. };
      { Fault.site = "n"; trigger = Fault.First 2; arg = 5. };
    ]
  in
  let t = Fault.arm ~seed:0 plan in
  let hits site =
    List.filter_map Fun.id (consult ~n:8 t site) |> List.length
  in
  Alcotest.(check int) "always: every consultation" 8 (hits "a");
  Alcotest.(check int) "at_iteration: exactly once" 1 (hits "i");
  Alcotest.(check int) "from_iteration: the tail" 3 (hits "f");
  Alcotest.(check int) "every: consultations 0,4" 2 (hits "e");
  Alcotest.(check int) "first: leading pair" 2 (hits "n");
  Alcotest.(check (option (float 0.))) "payload is the rule arg" (Some 1.)
    (Fault.fires t ~site:"a" ());
  Alcotest.(check int) "consultations tallied per site" 9
    (Fault.consultations t ~site:"a");
  Alcotest.(check int) "unconsulted site" 0 (Fault.consultations t ~site:"zz")

let test_fault_plan_roundtrip () =
  let text = "ssu-flip,prob=0.05,bit=40;sched-drop,every=100" in
  (match Fault.parse_plan text with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
    (match plan with
    | [ r1; r2 ] ->
      Alcotest.(check string) "site 1" "ssu-flip" r1.Fault.site;
      Alcotest.(check bool) "prob trigger" true (r1.Fault.trigger = Fault.Prob 0.05);
      check_float "bit= aliases arg=" 40. r1.Fault.arg;
      Alcotest.(check string) "site 2" "sched-drop" r2.Fault.site;
      Alcotest.(check bool) "every trigger" true (r2.Fault.trigger = Fault.Every 100)
    | _ -> Alcotest.failf "expected two rules, got %d" (List.length plan));
    match Fault.parse_plan (Fault.plan_to_string plan) with
    | Ok plan' -> Alcotest.(check bool) "plan_to_string round-trips" true (plan = plan')
    | Error e -> Alcotest.failf "re-parse failed: %s" e));
  let rejected s =
    match Fault.parse_plan s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bad plan %S accepted" s
  in
  rejected "";
  rejected "site,wat=1";
  rejected "site,prob=1.5";
  rejected "site,every=0"

(* ---- Json.num (non-finite floats degrade to null) ---- *)

let test_json_num_nonfinite () =
  Alcotest.(check bool) "nan -> Null" true (Json.num Float.nan = Json.Null);
  Alcotest.(check bool) "inf -> Null" true (Json.num Float.infinity = Json.Null);
  Alcotest.(check bool) "-inf -> Null" true
    (Json.num Float.neg_infinity = Json.Null);
  Alcotest.(check bool) "finite -> Num" true (Json.num 1.5 = Json.Num 1.5);
  (* the emitted null survives a serialize/parse round trip *)
  let doc = Json.Obj [ ("latency", Json.num Float.nan); ("n", Json.num 3.) ] in
  (match Json.of_string (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round trip" true (doc = doc')
  | Error e -> Alcotest.fail e);
  (* a raw non-finite Num still fails loudly: num is the sanctioned door *)
  match Json.to_string (Json.Num Float.nan) with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "raw NaN serialized as %S" s

let () =
  Alcotest.run "dadu_util"
    [
      ( "json",
        [
          Alcotest.test_case "round trip sample" `Quick test_json_roundtrip_sample;
          Alcotest.test_case "number forms" `Quick test_json_number_forms;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "whitespace + unicode" `Quick
            test_json_parse_whitespace_and_unicode;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "file round trip" `Quick test_json_file_roundtrip;
          Alcotest.test_case "num degrades non-finite to null" `Quick
            test_json_num_nonfinite;
          qcheck test_json_roundtrip_property;
        ] );
      ( "fault",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_fault_disabled_noop;
          Alcotest.test_case "arm is seed-deterministic" `Quick
            test_fault_arm_deterministic;
          Alcotest.test_case "forks are independent" `Quick
            test_fault_fork_independence;
          Alcotest.test_case "trigger semantics" `Quick test_fault_trigger_semantics;
          Alcotest.test_case "plan parse/print round-trip" `Quick
            test_fault_plan_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "stddev singleton" `Quick test_stats_stddev_singleton;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interp;
          Alcotest.test_case "percentile endpoints" `Quick test_stats_percentile_ends;
          Alcotest.test_case "percentile range check" `Quick test_stats_percentile_range;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "geomean non-positive" `Quick test_stats_geomean_nonpositive;
          qcheck test_stats_summary_order;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "float formatting" `Quick test_table_fmt;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape plain" `Quick test_csv_escape_plain;
          Alcotest.test_case "escape comma" `Quick test_csv_escape_comma;
          Alcotest.test_case "escape quote" `Quick test_csv_escape_quote;
          Alcotest.test_case "row" `Quick test_csv_row;
          Alcotest.test_case "write file" `Quick test_csv_write;
        ] );
      ( "chart",
        [
          Alcotest.test_case "empty" `Quick test_chart_empty;
          Alcotest.test_case "scaling" `Quick test_chart_scaling;
          Alcotest.test_case "log footnote" `Quick test_chart_log_note;
          Alcotest.test_case "log compresses" `Quick test_chart_log_compresses;
          Alcotest.test_case "negative clamped" `Quick test_chart_negative_clamped;
        ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "reset" `Quick test_counter_reset;
          Alcotest.test_case "to_list sorted" `Quick test_counter_to_list;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "covers all indices" `Quick test_pool_covers_all_indices;
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "empty" `Quick test_pool_empty;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "reuse across rounds" `Quick test_pool_reuse;
          Alcotest.test_case "single worker" `Quick test_pool_single_worker;
          Alcotest.test_case "size" `Quick test_pool_size;
          Alcotest.test_case "invalid size" `Quick test_pool_invalid;
          Alcotest.test_case "stress: 120 waves on one pool" `Slow
            test_pool_stress_reuse;
          Alcotest.test_case "worker exception propagates" `Slow
            test_pool_worker_exception_propagates;
          Alcotest.test_case "map deterministic at recommended size" `Slow
            test_pool_map_deterministic_at_recommended_size;
          Alcotest.test_case "grain covers all indices" `Quick
            test_pool_grain_covers_all_indices;
          Alcotest.test_case "grain validation" `Quick test_pool_grain_invalid;
          Alcotest.test_case "chunk shapes partition the range" `Quick
            test_pool_chunk_shapes;
          Alcotest.test_case "grained exception propagates" `Quick
            test_pool_grain_exception_propagates;
          Alcotest.test_case "adversarial grains" `Quick
            test_pool_chunk_adversarial;
          qcheck test_pool_chunk_partition_property;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "rejects non-finite" `Quick test_histogram_rejects_nonfinite;
          Alcotest.test_case "clear" `Quick test_histogram_clear;
          qcheck test_histogram_matches_stats;
        ] );
      ( "trace",
        [
          Alcotest.test_case "clock monotone" `Quick test_trace_now_monotone;
          Alcotest.test_case "record + sorted spans" `Quick test_trace_record_and_sort;
          Alcotest.test_case "negative times clamped" `Quick test_trace_negative_clamped;
          Alcotest.test_case "jsonl export" `Quick test_trace_jsonl;
          Alcotest.test_case "concurrent records" `Slow test_trace_concurrent_records;
        ] );
    ]
