(* Network chaos: an in-process server and the resilient client library
   connected over a real Unix socket, with seeded wire faults (net-cut /
   net-stall / net-garble / net-short-frame) injected on the server
   side, the client side, or both.  The invariants, per QCheck case:

   - every scripted op is answered exactly once (the client completes);
   - the solve-type dump is byte-identical to a fault-free reference
     run of the same script (sessions make replies a pure function of
     the waypoint sequence; resends are deduplicated by seq and
     answered from the per-session reply ring — DESIGN.md §16);
   - session waypoint ordinals come out contiguous, 0..K-1, no waypoint
     solved twice under a different ordinal. *)

open Dadu_service
module Json = Dadu_util.Json
module Fault = Dadu_util.Fault

let qcheck = QCheck_alcotest.to_alcotest

(* ---- harness ---- *)

let service_config =
  {
    Service.default_config with
    Service.warm_start = false (* one-shot solves batch-independent *);
    max_iterations = 60;
    chunk = 8;
  }

let with_server ~net_fault f =
  let config =
    {
      Server.default_config with
      Server.service = service_config;
      net_fault;
      idle_timeout_s = None;
      frame_timeout_s = Some 1.0;
    }
  in
  let path = Filename.temp_file "dadu_chaos" ".sock" in
  Sys.remove path;
  let server = Server.create ~config () in
  let runner =
    Thread.create (fun () -> Server.run server ~listen:(Server.Unix_sock path)) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join runner;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let connect path () =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Thread.delay 0.01;
      go ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  go ()

let run_script ?(fault = Fault.disabled) ?(retries = 0) ~path ops =
  Client.run ~retries ~backoff_ms:1 ~seed:7 ~read_timeout_s:0.25 ~fault
    ~connect:(connect path) ops

(* ---- script generation ---- *)

(* a script: one session trajectory (open, K waypoints, close) plus an
   optional interleaved one-shot solve.  Targets vary by case so the
   reply bytes genuinely differ between scripts. *)
let script_of ~nwp ~with_solve ~jitter =
  let ops = ref [] in
  let push op = ops := op :: !ops in
  push (Problem_file.Open { session = "traj"; robot = "eval:8" });
  for i = 0 to nwp - 1 do
    if with_solve && i = nwp / 2 then
      push
        (Problem_file.Solve
           {
             robot = "eval:6";
             x = 2.0 +. jitter;
             y = 1.0;
             z = 0.5;
             theta0 = None;
             deadline_s = None;
           });
    push
      (Problem_file.Waypoint
         {
           session = "traj";
           x = 3.0;
           y = 1.0 +. (0.02 *. float_of_int i) +. jitter;
           z = 1.0;
         })
  done;
  push (Problem_file.Close { session = "traj" });
  Array.of_list (List.rev !ops)

let ordinal_of payload =
  match Json.of_string payload with
  | Error _ -> None
  | Ok j ->
    (match Option.bind (Json.member "session" j) Json.to_str with
    | Some _ ->
      Option.bind (Json.member "ordinal" j) (fun v ->
          Option.map int_of_float (Json.to_float v))
    | None -> None)

let check_case ~name ~nwp ~with_solve ~reference outcome =
  match outcome with
  | Error (Client.Connect msg) ->
    QCheck.Test.fail_reportf "%s: connect failed: %s" name msg
  | Error (Client.Unrecovered msg) ->
    QCheck.Test.fail_reportf "%s: retry budget exhausted: %s" name msg
  | Ok o ->
    let expect = nwp + if with_solve then 1 else 0 in
    if List.length o.Client.solves <> expect then
      QCheck.Test.fail_reportf "%s: %d solve replies, expected %d" name
        (List.length o.Client.solves)
        expect;
    if o.Client.solves <> reference then
      QCheck.Test.fail_reportf
        "%s: dump differs from fault-free reference\nfault: %s\nref:   %s" name
        (String.concat "\n" (List.map snd o.Client.solves))
        (String.concat "\n" (List.map snd reference));
    let ordinals =
      List.sort compare
        (List.filter_map (fun (_, p) -> ordinal_of p) o.Client.solves)
    in
    if ordinals <> List.init nwp Fun.id then
      QCheck.Test.fail_reportf "%s: ordinals not contiguous: [%s]" name
        (String.concat ";" (List.map string_of_int ordinals));
    true

(* fault plans: modest probabilities so every case converges well inside
   the retry budget, yet cuts/stalls/garbles/short frames all fire *)
let plan_of_pick = function
  | 0 -> "net-cut,prob=0.08"
  | 1 -> "net-stall,prob=0.15,arg=0.005"
  | 2 -> "net-garble,prob=0.06"
  | 3 -> "net-short-frame,prob=0.06"
  | 4 -> "net-cut,prob=0.05;net-stall,prob=0.1,arg=0.005"
  | _ -> "net-garble,prob=0.04;net-short-frame,prob=0.04"

let case_gen =
  QCheck.make
    QCheck.Gen.(
      let* nwp = int_range 2 4 in
      let* with_solve = bool in
      let* pick = int_range 0 5 in
      let* seed = int_range 0 10_000 in
      return (nwp, with_solve, pick, seed))

let arm pick seed =
  match Fault.parse_plan (plan_of_pick pick) with
  | Ok plan -> Fault.arm ~seed plan
  | Error msg -> failwith msg

(* every request admitted under wire faults gets exactly one well-formed
   reply, byte-identical to the fault-free run *)
let chaos_test ~name ~count ~server_side ~client_side =
  QCheck.Test.make ~name ~count case_gen (fun (nwp, with_solve, pick, seed) ->
      let jitter = float_of_int (seed mod 17) *. 1e-3 in
      let ops = script_of ~nwp ~with_solve ~jitter in
      let reference =
        with_server ~net_fault:Fault.disabled (fun path ->
            match run_script ~path ops with
            | Ok o -> o.Client.solves
            | Error _ -> QCheck.Test.fail_report "fault-free reference failed")
      in
      let net_fault = if server_side then arm pick seed else Fault.disabled in
      let cfault =
        if client_side then arm pick (seed + 1) else Fault.disabled
      in
      with_server ~net_fault (fun path ->
          check_case ~name ~nwp ~with_solve ~reference
            (run_script ~fault:cfault ~retries:100 ~path ops)))

let server_chaos =
  chaos_test ~name:"server-side wire faults" ~count:80 ~server_side:true
    ~client_side:false

let client_chaos =
  chaos_test ~name:"client-side wire faults" ~count:80 ~server_side:false
    ~client_side:true

let both_chaos =
  chaos_test ~name:"faults on both sides" ~count:40 ~server_side:true
    ~client_side:true

(* sanity: the fault-free path through the resilient client matches the
   plain single-pass behaviour (no reconnects, no overloads) *)
let test_fault_free_baseline () =
  let ops = script_of ~nwp:3 ~with_solve:true ~jitter:0. in
  with_server ~net_fault:Fault.disabled (fun path ->
      match run_script ~path ops with
      | Error _ -> Alcotest.fail "baseline run failed"
      | Ok o ->
        Alcotest.(check int) "solve replies" 4 (List.length o.Client.solves);
        Alcotest.(check int) "no reconnects" 0 o.Client.reconnects;
        Alcotest.(check int) "no overloads" 0 o.Client.overloaded)

let () =
  Alcotest.run "dadu_netchaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "fault-free baseline" `Quick
            test_fault_free_baseline;
          qcheck server_chaos;
          qcheck client_chaos;
          qcheck both_chaos;
        ] );
    ]
