(* Tests for the experiment harness.  These run at a tiny scale (a few
   targets, reduced caps) — they verify plumbing and invariants, not the
   statistics, which the bench suite and EXPERIMENTS.md cover. *)

open Dadu_experiments
module Ik = Dadu_core.Ik
module Robots = Dadu_kinematics.Robots

let tiny = { Runner.targets = 4; max_iterations = 400; speculations = 16; seed = 5 }

(* a small grid shared by the table tests; DOFs kept low for speed *)
let tiny_grid = lazy (Measurements.collect ~dofs:[ 6; 10 ] tiny)

(* ---- Runner ---- *)

let test_runner_paper_scale () =
  Alcotest.(check int) "1000 targets" 1000 Runner.paper_scale.Runner.targets;
  Alcotest.(check int) "10k cap" 10_000 Runner.paper_scale.Runner.max_iterations;
  Alcotest.(check int) "64 speculations" 64 Runner.paper_scale.Runner.speculations

let test_runner_ik_config () =
  let config = Runner.ik_config tiny in
  Alcotest.(check int) "cap propagated" 400 config.Ik.max_iterations;
  Alcotest.(check (float 1e-12)) "paper accuracy" 1e-2 config.Ik.accuracy

let test_runner_env () =
  Unix.putenv "DADU_TARGETS" "7";
  let scale = Runner.default_scale () in
  Unix.putenv "DADU_TARGETS" "25";
  Alcotest.(check int) "env honoured" 7 scale.Runner.targets

let test_runner_env_invalid () =
  Unix.putenv "DADU_TARGETS" "zero";
  let raised =
    try
      ignore (Runner.default_scale ());
      false
    with Invalid_argument _ -> true
  in
  Unix.putenv "DADU_TARGETS" "25";
  Alcotest.(check bool) "bad env rejected" true raised

(* ---- Workload ---- *)

let chain10 = Robots.eval_chain ~dof:10

let quick_solver config p = Dadu_core.Quick_ik.solve ~speculations:16 ~config p

let test_workload_aggregate_fields () =
  let a = Workload.run tiny ~name:"q" ~chain:chain10 ~solver:quick_solver in
  Alcotest.(check string) "name" "q" a.Workload.name;
  Alcotest.(check int) "dof" 10 a.Workload.dof;
  Alcotest.(check int) "targets" 4 a.Workload.targets;
  Alcotest.(check bool) "converged <= targets" true (a.Workload.converged <= 4);
  Alcotest.(check bool) "mean within cap" true
    (a.Workload.mean_iterations >= 0. && a.Workload.mean_iterations <= 400.);
  Alcotest.(check int) "speculations" 16 a.Workload.speculations;
  Alcotest.(check (float 1e-6)) "work = specs x iters"
    (16. *. a.Workload.mean_iterations)
    a.Workload.mean_work

let test_workload_deterministic () =
  let a = Workload.run tiny ~name:"q" ~chain:chain10 ~solver:quick_solver in
  let b = Workload.run tiny ~name:"q" ~chain:chain10 ~solver:quick_solver in
  Alcotest.(check (float 0.)) "same mean iterations" a.Workload.mean_iterations
    b.Workload.mean_iterations;
  Alcotest.(check int) "same converged" a.Workload.converged b.Workload.converged

let test_workload_convergence_rate () =
  let a = Workload.run tiny ~name:"q" ~chain:chain10 ~solver:quick_solver in
  Alcotest.(check (float 1e-9)) "rate"
    (float_of_int a.Workload.converged /. 4.)
    (Workload.convergence_rate a)

(* ---- Measurements ---- *)

let test_measurements_structure () =
  let m = Lazy.force tiny_grid in
  Alcotest.(check (list int)) "dofs in order" [ 6; 10 ]
    (List.map (fun (p : Measurements.per_dof) -> p.Measurements.dof) m.Measurements.per_dof);
  List.iter
    (fun (p : Measurements.per_dof) ->
      Alcotest.(check string) "jt name" "JT-Serial" p.Measurements.jt_serial.Workload.name;
      Alcotest.(check string) "pinv name" "J-1-SVD" p.Measurements.pinv_svd.Workload.name;
      Alcotest.(check string) "quick name" "JT-Speculation"
        p.Measurements.quick_ik.Workload.name)
    m.Measurements.per_dof

let test_measurements_reduction () =
  let m = Lazy.force tiny_grid in
  List.iter
    (fun (p : Measurements.per_dof) ->
      let r = Measurements.reduction_vs_jt p in
      Alcotest.(check bool) "reduction in [0, 1)" true (r >= 0. && r < 1.))
    m.Measurements.per_dof

(* ---- Fig4 ---- *)

let test_fig4_structure () =
  let rows = Fig4.run ~dofs:[ 6 ] ~counts:[ 4; 8 ] tiny in
  Alcotest.(check int) "one dof row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check (list int)) "speculation counts" [ 4; 8 ]
    (List.map (fun (c : Fig4.cell) -> c.Fig4.speculations) row.Fig4.cells);
  ignore (Fig4.to_table rows)

let test_fig4_csv () =
  let rows = Fig4.run ~dofs:[ 6; 10 ] ~counts:[ 4; 8 ] tiny in
  let csv = Fig4.to_csv_rows rows in
  Alcotest.(check int) "dofs x counts rows" 4 (List.length csv);
  List.iter
    (fun row -> Alcotest.(check int) "arity" (List.length Fig4.csv_header) (List.length row))
    csv

(* ---- Fig5 / Table2 / Table3 ---- *)

let test_fig5_tables_render () =
  let m = Lazy.force tiny_grid in
  let a = Dadu_util.Table.render (Fig5.table_iterations m) in
  let b = Dadu_util.Table.render (Fig5.table_work m) in
  Alcotest.(check bool) "5a has methods" true
    (Astring.String.is_infix ~affix:"JT-Speculation" a);
  Alcotest.(check bool) "5b rendered" true (String.length b > 0);
  Alcotest.(check int) "csv rows = dofs x 3" 6 (List.length (Fig5.to_csv_rows m))

let test_table2_rows () =
  let m = Lazy.force tiny_grid in
  let rows = Table2.compute m in
  Alcotest.(check int) "row per dof" 2 (List.length rows);
  List.iter
    (fun (r : Table2.row) ->
      Alcotest.(check bool) "all times positive" true
        (r.Table2.jt_serial_atom_ms > 0. && r.Table2.pinv_svd_atom_ms > 0.
        && r.Table2.quick_atom_ms > 0. && r.Table2.quick_tx1_ms > 0.
        && r.Table2.quick_ikacc_ms > 0.);
      Alcotest.(check bool) "IKAcc fastest" true
        (r.Table2.quick_ikacc_ms < r.Table2.quick_tx1_ms
        && r.Table2.quick_ikacc_ms < r.Table2.quick_atom_ms))
    rows;
  ignore (Table2.to_table rows);
  ignore (Table2.speedup_table rows)

let test_table2_speedups_positive () =
  let rows = Table2.compute (Lazy.force tiny_grid) in
  let s = Table2.speedups rows in
  Alcotest.(check bool) "all positive" true
    (s.Table2.ikacc_vs_jt_serial_atom > 0. && s.Table2.ikacc_vs_tx1 > 0.
    && s.Table2.ikacc_vs_pinv_atom > 0. && s.Table2.tx1_vs_quick_atom > 0.)

let test_table3_rows () =
  let m = Lazy.force tiny_grid in
  let t2 = Table2.compute m in
  let rows = Table3.compute m t2 in
  Alcotest.(check int) "row per dof" 2 (List.length rows);
  List.iter
    (fun (r : Table3.row) ->
      Alcotest.(check bool) "IKAcc energy lowest" true
        (r.Table3.quick_ikacc_j < r.Table3.quick_tx1_j
        && r.Table3.quick_ikacc_j < r.Table3.quick_atom_j);
      Alcotest.(check bool) "power below 1 W" true (r.Table3.ikacc_avg_power_w < 1.))
    rows;
  Alcotest.(check bool) "efficiency > 1" true (Table3.efficiency_vs_tx1 rows > 1.);
  ignore (Table3.platform_table ());
  ignore (Table3.to_table rows)

(* ---- Convergence profiles ---- *)

let test_convergence_profiles () =
  let profiles = Convergence.run ~dof:6 tiny in
  Alcotest.(check int) "three methods" 3 (List.length profiles);
  List.iter
    (fun (p : Convergence.profile) ->
      let errs = List.map snd p.Convergence.checkpoints in
      Alcotest.(check bool) "checkpoints within cap" true
        (List.for_all (fun (c, _) -> c <= tiny.Runner.max_iterations)
           p.Convergence.checkpoints);
      (* profiles never increase beyond the starting error for these
         monotone-ish solvers on a mean basis *)
      Alcotest.(check bool) "final <= initial" true
        (List.nth errs (List.length errs - 1) <= List.hd errs +. 1e-9))
    profiles;
  ignore (Convergence.to_table profiles);
  Alcotest.(check bool) "chart renders" true
    (String.length (Convergence.to_chart profiles) > 0)

let test_convergence_same_start_error () =
  (* all methods see the same problems, so iteration-0 error agrees *)
  let profiles = Convergence.run ~dof:6 tiny in
  let starts =
    List.map (fun (p : Convergence.profile) -> List.assoc 0 p.Convergence.checkpoints) profiles
  in
  match starts with
  | a :: rest ->
    List.iter (fun b -> Alcotest.(check (float 1e-12)) "same start" a b) rest
  | [] -> Alcotest.fail "no profiles"

(* ---- Scorecard ---- *)

let test_scorecard_structure () =
  let claims = Scorecard.evaluate (Lazy.force tiny_grid) in
  (* no 100-DOF row in the tiny grid, so the real-time claim is absent *)
  Alcotest.(check int) "nine claims" 9 (List.length claims);
  ignore (Scorecard.to_table claims);
  List.iter
    (fun (c : Scorecard.claim) ->
      Alcotest.(check bool) "fields populated" true
        (c.Scorecard.id <> "" && c.Scorecard.paper <> "" && c.Scorecard.measured <> ""))
    claims

let test_scorecard_passes_on_eval_chains () =
  (* the real check: at the paper's DOF extremes the core claims hold *)
  let scale = { Runner.targets = 6; max_iterations = 10_000; speculations = 64; seed = 3 } in
  let m = Measurements.collect ~dofs:[ 12; 100 ] scale in
  let claims = Scorecard.evaluate m in
  Alcotest.(check int) "ten claims" 10 (List.length claims);
  List.iter
    (fun (c : Scorecard.claim) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s (measured %s)" c.Scorecard.id
           c.Scorecard.description c.Scorecard.measured)
        true
        (c.Scorecard.verdict <> Scorecard.Fail))
    claims;
  Alcotest.(check bool) "overall" true (Scorecard.all_pass claims)

(* ---- Robustness ---- *)

let test_robustness_structure () =
  let rows = Robustness.run ~seeds:[ 1; 2 ] ~dofs:[ 6 ] tiny in
  Alcotest.(check int) "two seeds" 2 (List.length rows);
  List.iter
    (fun (r : Robustness.row) ->
      Alcotest.(check int) "one dof" 1 (List.length r.Robustness.cells);
      List.iter
        (fun (c : Robustness.cell) ->
          Alcotest.(check bool) "reduction in [0,1)" true
            (c.Robustness.reduction >= 0. && c.Robustness.reduction < 1.))
        r.Robustness.cells)
    rows;
  ignore (Robustness.to_table rows);
  let lo, hi = Robustness.reduction_range rows ~dof:6 in
  Alcotest.(check bool) "range ordered" true (lo <= hi)

let test_robustness_missing_dof () =
  let rows = Robustness.run ~seeds:[ 1 ] ~dofs:[ 6 ] tiny in
  Alcotest.check_raises "missing dof" Not_found (fun () ->
      ignore (Robustness.reduction_range rows ~dof:99))

(* ---- Ablation ---- *)

let test_ablation_strategies () =
  let rows = Ablation.run_strategies ~dofs:[ 6 ] tiny in
  Alcotest.(check int) "one dof" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check int) "five strategies" 5 (List.length row.Ablation.cells);
  ignore (Ablation.strategy_table rows)

let test_ablation_ssus () =
  let m = Lazy.force tiny_grid in
  let rows = Ablation.run_ssus ~ssus:[ 4; 8; 16 ] ~dof:10 m in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let times = List.map (fun (r : Ablation.ssu_row) -> r.Ablation.time_ms) rows in
  let sorted_desc = List.sort (fun a b -> compare b a) times in
  Alcotest.(check (list (float 1e-12))) "more SSUs, never slower" sorted_desc times;
  ignore (Ablation.ssu_table ~dof:10 rows)

let test_ablation_missing_dof () =
  let m = Lazy.force tiny_grid in
  Alcotest.check_raises "missing dof" Not_found (fun () ->
      ignore (Ablation.run_ssus ~dof:99 m))

let () =
  Alcotest.run "dadu_experiments"
    [
      ( "runner",
        [
          Alcotest.test_case "paper scale" `Quick test_runner_paper_scale;
          Alcotest.test_case "ik config" `Quick test_runner_ik_config;
          Alcotest.test_case "env override" `Quick test_runner_env;
          Alcotest.test_case "env invalid" `Quick test_runner_env_invalid;
        ] );
      ( "workload",
        [
          Alcotest.test_case "aggregate fields" `Quick test_workload_aggregate_fields;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "convergence rate" `Quick test_workload_convergence_rate;
        ] );
      ( "measurements",
        [
          Alcotest.test_case "structure" `Quick test_measurements_structure;
          Alcotest.test_case "reduction" `Quick test_measurements_reduction;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "structure" `Quick test_fig4_structure;
          Alcotest.test_case "csv" `Quick test_fig4_csv;
        ] );
      ( "tables",
        [
          Alcotest.test_case "fig5 renders" `Quick test_fig5_tables_render;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
          Alcotest.test_case "table2 speedups" `Quick test_table2_speedups_positive;
          Alcotest.test_case "table3 rows" `Quick test_table3_rows;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "profiles" `Quick test_convergence_profiles;
          Alcotest.test_case "same start error" `Quick test_convergence_same_start_error;
        ] );
      ( "scorecard",
        [
          Alcotest.test_case "structure" `Quick test_scorecard_structure;
          Alcotest.test_case "passes on eval chains" `Slow
            test_scorecard_passes_on_eval_chains;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "structure" `Quick test_robustness_structure;
          Alcotest.test_case "missing dof" `Quick test_robustness_missing_dof;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "strategies" `Quick test_ablation_strategies;
          Alcotest.test_case "ssu sweep" `Quick test_ablation_ssus;
          Alcotest.test_case "missing dof" `Quick test_ablation_missing_dof;
        ] );
    ]
