(* Benchmark regression gate.

   Usage: bench_diff [--words-only] [--threshold PCT] OLD.json NEW.json

   Compares two BENCH_quickik.json files (schema 1) benchmark-by-benchmark
   and exits 1 if any gated metric regressed.  A metric regresses when

     new > old * (1 + threshold) + floor

   with threshold 15% by default.  Floors absorb quantization noise near
   zero: ns_per_iter has floor 0 (values are tens of microseconds), while
   words_per_iter has floor 8 so a legitimately zero-allocation kernel is
   allowed measurement jitter of a couple of boxed words but not a real
   per-iteration allocation.  --words-only gates only words_per_iter —
   allocation counts are deterministic across machines, wall-clock is not,
   so this is the mode CI uses against the committed baseline.

   Exit-code contract (relied on by CI and test/cram/bench_diff.t):

     0  every gated metric within the noise band ("ok"), improved beyond
        it ("GOOD" — the run nags to refresh the stale baseline but does
        not fail), or present only in NEW ("new", ungated: a benchmark
        gains a gate the first time it lands in the committed baseline);
     1  at least one gated metric regressed past the threshold, or a
        baseline benchmark is missing from NEW — a rename or deletion
        must be accompanied by a deliberate baseline refresh;
     2  usage or input error: bad flags, unreadable/unparseable JSON,
        wrong schema, or an entry without the gated numeric field. *)

module Json = Dadu_util.Json

type metric = { field : string; floor : float }

let all_metrics =
  [ { field = "ns_per_iter"; floor = 0. }; { field = "words_per_iter"; floor = 8. } ]

let words_metrics = [ { field = "words_per_iter"; floor = 8. } ]

(* Gated only when the BASELINE entry carries the field: a benchmark
   grows such a gate the moment its baseline records the metric, without
   forcing the field onto every entry.  Once the baseline has it, NEW
   must too — dropping the field is a gate-evading rename (exit 2, same
   as any missing gated field).  iters_per_waypoint (session temporal
   warm-starting) is iteration counts, deterministic across machines, so
   it stays gated even under --words-only; its floor of 1 iteration
   absorbs convergence jitter near the 1-2 iteration steady state. *)
let optional_metrics = [ { field = "iters_per_waypoint"; floor = 1. } ]

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

let load path =
  match Json.read_file path with
  | Error msg -> die "%s: %s" path msg
  | Ok json ->
    (match Json.member "schema" json with
    | Some (Json.Num 1.) -> ()
    | _ -> die "%s: unsupported or missing schema (want 1)" path);
    (match Json.member "benchmarks" json with
    | Some (Json.List benchmarks) ->
      List.map
        (fun b ->
          match Json.member "name" b with
          | Some (Json.Str name) -> (name, b)
          | _ -> die "%s: benchmark entry without a name" path)
        benchmarks
    | _ -> die "%s: no benchmarks array" path)

let metric_value path name b field =
  match Option.bind (Json.member field b) Json.to_float with
  | Some x -> x
  | None -> die "%s: benchmark %s has no numeric %s" path name field

let () =
  let words_only = ref false in
  let threshold = ref 15. in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--words-only" :: rest ->
      words_only := true;
      parse rest
    | "--threshold" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some x when x >= 0. -> threshold := x
      | _ -> die "--threshold wants a non-negative percentage, got %S" pct);
      parse rest
    | "--threshold" :: [] -> die "--threshold wants a value"
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !positional with
    | [ o; n ] -> (o, n)
    | _ ->
      die "usage: bench_diff [--words-only] [--threshold PCT] OLD.json NEW.json"
  in
  let old_benchmarks = load old_path in
  let new_benchmarks = load new_path in
  let metrics = if !words_only then words_metrics else all_metrics in
  let ratio = 1. +. (!threshold /. 100.) in
  let regressions = ref 0 in
  let improvements = ref 0 in
  List.iter
    (fun (name, old_b) ->
      match List.assoc_opt name new_benchmarks with
      | None ->
        incr regressions;
        Printf.printf "FAIL %-24s missing from %s\n" name new_path
      | Some new_b ->
        let metrics =
          metrics
          @ List.filter
              (fun { field; _ } -> Json.member field old_b <> None)
              optional_metrics
        in
        List.iter
          (fun { field; floor } ->
            let ov = metric_value old_path name old_b field in
            let nv = metric_value new_path name new_b field in
            let limit = (ov *. ratio) +. floor in
            let delta = if ov = 0. then 0. else (nv -. ov) /. ov *. 100. in
            if nv > limit then begin
              incr regressions;
              Printf.printf
                "FAIL %-24s %-14s %12.2f -> %12.2f  (%+.1f%%, limit %.2f)\n"
                name field ov nv delta limit
            end
            else if nv < (ov /. ratio) -. floor then begin
              (* mirrored bound: an improvement as far outside the noise
                 band as a gated regression would be — the baseline is
                 stale and undersells the current code *)
              incr improvements;
              Printf.printf
                "GOOD %-24s %-14s %12.2f -> %12.2f  (%+.1f%%)\n"
                name field ov nv delta
            end
            else
              Printf.printf
                "ok   %-24s %-14s %12.2f -> %12.2f  (%+.1f%%)\n"
                name field ov nv delta)
          metrics)
    old_benchmarks;
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name old_benchmarks = None then
        Printf.printf "new  %-24s not in %s (ungated)\n" name old_path)
    new_benchmarks;
  if !improvements > 0 then
    Printf.printf
      "%d improvement(s) beyond %.0f%% — refresh the baseline (make \
       bench-json) to lock them in\n"
      !improvements !threshold;
  if !regressions > 0 then begin
    Printf.printf "%d regression(s) beyond %.0f%% threshold\n" !regressions
      !threshold;
    exit 1
  end
  else Printf.printf "no regressions (threshold %.0f%%)\n" !threshold
