(* Measures the sequential-vs-parallel crossover of the speculation sweep.

   Usage: cutover_probe [POOL_SIZE]

   For each (dof, Max) grid point this times the link-major candidate
   sweep run sequentially and run as ~pool-size contiguous chunks on a
   domain pool, and prints ns/sweep for both.  The dof×Max product where
   the pool first wins is what [Quick_ik.parallel_cutover] encodes; rerun
   this probe when retuning that constant for new hardware. *)

open Dadu_kinematics

let time_ns reps f =
  f ();
  (* warm *)
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps in
    if ns < !best then best := ns
  done;
  !best

let () =
  let pool_size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else Dadu_util.Domain_pool.recommended_size ()
  in
  let pool = Dadu_util.Domain_pool.create pool_size in
  Printf.printf "pool size %d\n%!" pool_size;
  Printf.printf "%5s %5s %9s %12s %12s %8s\n" "dof" "max" "dof*max"
    "seq ns" "par ns" "winner";
  List.iter
    (fun dof ->
      let chain = Robots.eval_chain ~dof in
      let scratch = Fk.make_scratch () in
      Fk.precompile scratch chain;
      let theta = Array.make dof 0.1 in
      let dtheta = Array.make dof 0.02 in
      List.iter
        (fun count ->
          let coeffs =
            Array.init count (fun k ->
                float_of_int (k + 1) /. float_of_int count)
          in
          let pos = Array.make (3 * count) 0. in
          let err2 = Array.make count 0. in
          let sweep lo hi =
            Fk.speculate_range_into ~scratch ~pos ~err2 ~tx:1e6 ~ty:1e6
              ~tz:1e6 chain ~theta ~dtheta ~coeffs ~stride:count ~lo ~hi
          in
          let seq = time_ns 2000 (fun () -> sweep 0 count) in
          let grain = (count + pool_size - 1) / pool_size in
          let par =
            time_ns 2000 (fun () ->
                Dadu_util.Domain_pool.parallel_for_chunks pool ~grain count
                  sweep)
          in
          Printf.printf "%5d %5d %9d %12.0f %12.0f %8s\n%!" dof count
            (dof * count) seq par
            (if par < seq then "par" else "seq"))
        [ 8; 16; 32; 64; 128 ])
    [ 12; 30; 50; 100; 200 ];
  Dadu_util.Domain_pool.shutdown pool
