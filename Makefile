# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-service bench bench-full bench-json bench-check \
        examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# the batched serving layer's suite only (scheduler/cache/fallback/metrics)
test-service:
	dune build @all
	dune exec test/test_service.exe

# default (reduced) scale: ~1 minute
bench:
	dune exec bench/main.exe

# the paper's 1000-target workload: ~20 minutes
bench-full:
	DADU_TARGETS=1000 dune exec bench/main.exe

# steady-state Quick-IK kernel benchmark -> BENCH_quickik.json
bench-json:
	dune exec bench/main.exe -- micro --json

# regenerate the kernel benchmark and gate it against the committed
# baseline (fails on >15% ns/iter or words/iter regressions); the
# baseline file is restored afterwards — refresh it deliberately with
# `make bench-json`
bench-check:
	cp BENCH_quickik.json _build/bench_baseline.json
	dune exec bench/main.exe -- micro --json
	dune exec tools/bench_diff.exe -- _build/bench_baseline.json BENCH_quickik.json; \
	  status=$$?; cp _build/bench_baseline.json BENCH_quickik.json; exit $$status

examples:
	@for e in quickstart trajectory high_dof_snake accelerator_sim \
	          solver_shootout redundancy pose_reaching whole_body \
	          low_torque dynamics_sim obstacle_avoidance; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
