# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-service bench bench-full examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# the batched serving layer's suite only (scheduler/cache/fallback/metrics)
test-service:
	dune build @all
	dune exec test/test_service.exe

# default (reduced) scale: ~1 minute
bench:
	dune exec bench/main.exe

# the paper's 1000-target workload: ~20 minutes
bench-full:
	DADU_TARGETS=1000 dune exec bench/main.exe

examples:
	@for e in quickstart trajectory high_dof_snake accelerator_sim \
	          solver_shootout redundancy pose_reaching whole_body \
	          low_torque dynamics_sim obstacle_avoidance; do \
	  echo "==== $$e ===="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
